//! The discrete-event session loop.
//!
//! The session is an explicit poll-based state machine: [`SessionState`]
//! holds every piece of sender/receiver state, and the event kernel
//! (single- or multi-session) pops events off an [`EventQueue`] and
//! feeds them to [`SessionState::step`]. One worker thread can
//! interleave thousands of sessions over a shared queue via
//! [`run_sessions`]; the classic [`run_session`] entry points drive a
//! single state machine over a private queue and are byte-identical to
//! the historical monolithic loop.

use std::collections::VecDeque;
use std::mem;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ravel_cc::CongestionController;
use ravel_codec::{Decoder, EncodedFrame, Encoder, EncoderConfig};
use ravel_core::{AdaptiveController, FeedbackWatchdog, FrameDecision, WatchdogConfig};
use ravel_metrics::{FrameOutcomeKind, FrameRecord, LatencyRecorder};
use ravel_net::{
    ChaosSchedule, ChaosSpec, ChaosTrace, CorruptSchedule, CorruptSpec, Delivery, FecDecoder,
    FecEncoder, FeedbackBuilder, FeedbackCorruptor, FeedbackReport, FeedbackValidator,
    ForwardChaos, FrameAssembler, Link, LinkConfig, MediaKind, NackBatch, NackGenerator, Pacer,
    Packet, Packetizer, PliRequester, ReversePath, ReversePathConfig, RtxBuffer,
};
use ravel_obs::{ObsEvent, ObsLog, ObsMode};
use ravel_sim::{ArenaStats, BoxPool, Dur, EventQueue, SeriesSet, Time};
use ravel_trace::BandwidthTrace;
use ravel_video::{ContentClass, RawFrame, Resolution, VideoSource};

use crate::invariants::{Invariant, InvariantChecker, InvariantViolation};
use crate::scheme::Scheme;

/// Everything one experiment run needs to know.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// The sender scheme under test.
    pub scheme: Scheme,
    /// Content class driving frame complexity.
    pub content: ContentClass,
    /// Frame rate.
    pub fps: u32,
    /// Capture resolution.
    pub resolution: Resolution,
    /// Session length (capture stops here; in-flight media drains after).
    pub duration: Dur,
    /// Initial target bitrate for encoder + congestion controller.
    pub start_rate_bps: f64,
    /// Bottleneck parameters (propagation, queue bound, jitter, loss).
    pub link: LinkConfig,
    /// How often the receiver flushes feedback.
    pub feedback_interval: Dur,
    /// One-way delay of the (uncongested) reverse path.
    pub reverse_delay: Dur,
    /// Impairments applied to ALL receiver → sender traffic (feedback
    /// reports, NACKs, PLIs). The default is pass-through.
    pub reverse_path: ReversePathConfig,
    /// Feedback watchdog: blind-period rate backoff when no valid report
    /// arrives within a timeout. `None` (the default) disables it —
    /// the sender then transmits at the last commanded rate for the
    /// whole blind period, which is the failure mode E17 measures.
    pub watchdog: Option<WatchdogConfig>,
    /// Playout deadline: a frame arriving later than this after capture
    /// is decoded (keeping the reference chain healthy) but displayed
    /// stale — the libwebrtc jitter buffer's bounded-delay behaviour.
    pub max_playout_delay: Dur,
    /// NACK/RTX loss recovery (standard WebRTC behaviour, on for both
    /// schemes; disable to study raw loss).
    pub enable_rtx: bool,
    /// Temporal layers for the encoder (1 = plain IPPP, 2 = hierarchical-P
    /// with a droppable enhancement layer).
    pub temporal_layers: u8,
    /// FlexFEC-style XOR parity: one parity packet per `fec_group_size`
    /// video packets, recovering single losses with zero round-trips at
    /// ~1/group_size bitrate overhead.
    pub enable_fec: bool,
    /// Media packets covered per parity packet when FEC is enabled.
    pub fec_group_size: usize,
    /// Run an Opus-style audio flow (one packet per 20 ms) alongside the
    /// video on the same bottleneck; its per-packet latency is recorded.
    /// Audio bypasses the video pacer, as in WebRTC.
    pub enable_audio: bool,
    /// Audio bitrate when enabled.
    pub audio_bitrate_bps: f64,
    /// Master seed: drives content, link jitter/loss, and traces.
    pub seed: u64,
    /// Record time series (costs memory; on for figure experiments).
    pub record_series: bool,
    /// Forward-path chaos: when set, a fault schedule is generated from
    /// `(spec.seed, spec.intensity)` and applied to the forward link
    /// (burst loss, blackouts, capacity collapse, reordering,
    /// duplication, MTU shrink). `None` (the default) adds no faults and
    /// consumes no randomness, so existing runs stay byte-identical.
    pub chaos: Option<ChaosSpec>,
    /// Control-plane corruption: when set, a corruption schedule is
    /// generated from `(spec.seed, spec.intensity)` and applied to
    /// in-flight feedback reports and PLIs on the reverse path (seq
    /// replay/warp, time warps, size bombs, truncated/forged packet
    /// vectors). `None` (the default) adds no corruption and consumes
    /// no randomness, so existing runs stay byte-identical.
    pub corrupt: Option<CorruptSpec>,
    /// Test-only fault injection used by the harness's fault-isolation
    /// fixtures: a deterministic mid-session panic or a self-scheduling
    /// runaway event storm. [`InjectedFault::None`] (the default) is
    /// exact passthrough.
    pub inject: InjectedFault,
}

/// A deterministic fault injected into the event loop — the fixture
/// mechanism behind the harness's panic-quarantine and runaway-guard
/// tests. Injection is keyed to the *simulation* clock, so a fixture
/// cell fails identically at any worker count and on cache hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InjectedFault {
    /// No injection (the default; zero-cost passthrough).
    #[default]
    None,
    /// Panic on the first event at or after `at`.
    Panic {
        /// Simulation instant the panic fires at.
        at: Time,
    },
    /// From the first event at or after `at`, schedule a self-renewing
    /// event at the current instant forever — a sim-time livelock the
    /// runaway guard must cut off.
    Runaway {
        /// Simulation instant the storm starts at.
        at: Time,
    },
}

impl SessionConfig {
    /// The canonical E1 setup: 720p30 talking-head, 60 s, 4 Mbps start,
    /// typical link (40 ms RTT), 50 ms feedback.
    pub fn default_with(scheme: Scheme) -> SessionConfig {
        SessionConfig {
            scheme,
            content: ContentClass::TalkingHead,
            fps: 30,
            resolution: Resolution::P720,
            duration: Dur::secs(60),
            start_rate_bps: 4e6,
            link: LinkConfig::typical(),
            feedback_interval: Dur::millis(50),
            reverse_delay: Dur::millis(20),
            reverse_path: ReversePathConfig::default(),
            watchdog: None,
            max_playout_delay: Dur::millis(600),
            enable_rtx: true,
            enable_fec: false,
            fec_group_size: 10,
            temporal_layers: 1,
            enable_audio: false,
            audio_bitrate_bps: 32_000.0,
            seed: 1,
            record_series: false,
            chaos: None,
            corrupt: None,
            inject: InjectedFault::None,
        }
    }
}

/// Event-count allowance per simulated second of session length
/// (capture plus drain). The busiest committed cells process on the
/// order of a few thousand events per simulated second; this budget
/// leaves well over an order of magnitude of headroom while still
/// cutting off a self-scheduling storm in well under a second of wall
/// time.
pub const RUNAWAY_EVENTS_PER_SIM_SEC: u64 = 100_000;

/// Flat event allowance on top of the per-second budget, so very short
/// sessions keep proportionally generous headroom.
pub const RUNAWAY_BASE_EVENTS: u64 = 200_000;

/// Slack past the drain deadline before the sim-time horizon trips.
/// The event loop already stops at `capture_end + DRAIN_GRACE`; the
/// horizon is the independent backstop that survives a bug in that
/// logic.
const HORIZON_MARGIN: Dur = Dur::secs(1);

/// Runaway protection for one session: an event-count budget and a
/// sim-time horizon derived from the trace spec (session duration),
/// plus an optional cooperative cancellation flag a supervisor thread
/// can set when wall-clock time runs out.
///
/// Exceeding the budget or horizon terminates the session with a
/// [`Invariant::RunawayTermination`] violation; a set cancellation flag
/// terminates it with [`SessionResult::cancelled`] raised. Both paths
/// return a well-formed (truncated) result instead of hanging a worker.
#[derive(Debug, Clone, Default)]
pub struct SessionGuard {
    /// Maximum events the loop may pop before the guard trips.
    /// `0` disables the budget.
    pub max_events: u64,
    /// Latest simulation instant the loop may reach before the guard
    /// trips. [`Time::ZERO`] disables the horizon.
    pub horizon: Time,
    /// Cooperative cancellation, polled every
    /// [`CANCEL_POLL_EVERY_EVENTS`] events. `None` disables it.
    pub cancel: Option<Arc<AtomicBool>>,
}

/// How often (in popped events) the loop polls the cancellation flag.
/// Power of two so the check compiles to a mask.
pub const CANCEL_POLL_EVERY_EVENTS: u64 = 1024;

impl SessionGuard {
    /// The standard guard for `cfg`: event budget and horizon scaled to
    /// the session duration, no cancellation.
    pub fn for_config(cfg: &SessionConfig) -> SessionGuard {
        let sim_secs = cfg.duration.as_secs_f64().ceil() as u64 + DRAIN_GRACE.as_secs_f64() as u64;
        SessionGuard {
            max_events: RUNAWAY_BASE_EVENTS + sim_secs * RUNAWAY_EVENTS_PER_SIM_SEC,
            horizon: Time::ZERO + cfg.duration + DRAIN_GRACE + HORIZON_MARGIN,
            cancel: None,
        }
    }

    /// This guard with a cancellation flag attached.
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> SessionGuard {
        self.cancel = Some(flag);
        self
    }

    /// True when the budget is enabled and `popped` exceeds it.
    fn over_budget(&self, popped: u64) -> bool {
        self.max_events > 0 && popped > self.max_events
    }

    /// True when the horizon is enabled and `now` is past it.
    fn over_horizon(&self, now: Time) -> bool {
        self.horizon > Time::ZERO && now > self.horizon
    }

    /// Polls the cancellation flag (cheaply: only every
    /// [`CANCEL_POLL_EVERY_EVENTS`] popped events).
    fn cancelled(&self, popped: u64) -> bool {
        popped.is_multiple_of(CANCEL_POLL_EVERY_EVENTS)
            && self
                .cancel
                .as_ref()
                .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }
}

/// Fixed render/decode latency added to every displayed frame.
const DECODE_RENDER_DELAY: Dur = Dur::millis(5);

/// How long after capture stops the session keeps draining in-flight
/// media and feedback.
const DRAIN_GRACE: Dur = Dur::secs(2);

/// Fraction of the current video target the RTX token bucket refills at.
/// libwebrtc similarly bounds retransmission bitrate so congestion losses
/// cannot trigger a self-sustaining RTX storm.
const RTX_RATE_FRACTION: f64 = 0.1;

/// Tokens one retransmitted packet costs: a generous bound on the wire
/// size of an MTU packet (1250 B = 10 kbit).
const RTX_GRANT_BITS: f64 = 10_000.0;

/// Cap on accumulated RTX tokens — at most ~13 back-to-back
/// retransmissions after an idle stretch.
const RTX_BURST_BITS: f64 = 128_000.0;

/// Tokens available at session start (half a burst: enough to repair an
/// early loss without funding a storm).
const RTX_INITIAL_TOKENS_BITS: f64 = 64_000.0;

/// The pacer never drains slower than this, even if the encoder target
/// collapses — matching libwebrtc's minimum pacing rate, which keeps
/// feedback flowing so recovery stays possible.
const PACER_FLOOR_BPS: f64 = 100_000.0;

/// Sender-side PLI rate limit: requests inside this window coalesce into
/// one IDR, so a lossy burst cannot trigger an IDR storm.
const PLI_MIN_INTERVAL: Dur = Dur::millis(300);

/// Receiver NACK poll cadence.
const NACK_POLL_EVERY: Dur = Dur::millis(10);

/// One Opus frame per tick.
const AUDIO_TICK: Dur = Dur::millis(20);

/// Audio packets carry frame indexes in a disjoint namespace so they
/// never collide with video frames in feedback-side bookkeeping.
const AUDIO_INDEX_BASE: u64 = 1 << 40;

/// Most recent sent video packets the simulation retains for FEC
/// reconstruction (the omniscient sent-video window).
const SENT_VIDEO_WINDOW: usize = 4096;

/// What the session produced.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Per-frame latency/quality records (capture order).
    pub recorder: LatencyRecorder,
    /// Time series (empty unless `record_series`).
    pub series: SeriesSet,
    /// Frames captured.
    pub frames_captured: u64,
    /// Frames the sender skipped (adaptive drain).
    pub frames_skipped: u64,
    /// Frames actually encoded (captured minus skipped).
    pub frames_encoded: u64,
    /// Simulation events processed by the event loop — the cell's true
    /// unit of work, reported by the harness as events/second.
    pub events_processed: u64,
    /// Packets the bottleneck link delivered to the receiver.
    pub packets_delivered: u64,
    /// Packets dropped at the bottleneck queue.
    pub queue_drops: u64,
    /// Packets lost to random loss.
    pub random_losses: u64,
    /// Drop events the adaptive controller handled (0 for baseline).
    pub drops_handled: u64,
    /// Packets retransmitted via NACK/RTX.
    pub retransmissions: u64,
    /// Packets reconstructed by FEC.
    pub fec_recovered: u64,
    /// Parity packets sent.
    pub fec_parity_sent: u64,
    /// One-way audio latencies (send → arrival), one per delivered audio
    /// packet; empty unless audio was enabled.
    pub audio_latencies: Vec<(Time, Dur)>,
    /// Individual NACKs the receiver sent.
    pub nacks_sent: u64,
    /// VBV underflows at the encoder.
    pub vbv_underflows: u64,
    /// Reverse-path messages lost (stochastic loss + blackout drops).
    pub reverse_lost: u64,
    /// Reverse-path messages duplicated in transit.
    pub reverse_duplicates: u64,
    /// Feedback reports the sender discarded as duplicate or stale.
    pub reports_discarded: u64,
    /// Feedback reports the sender's validator rejected as internally
    /// inconsistent (corrupted or forged), total.
    pub rejected_reports: u64,
    /// The rejections broken down by reason, nonzero entries only, in
    /// [`ravel_net::REJECT_REASONS`] order.
    pub rejected_by_reason: Vec<(&'static str, u64)>,
    /// Feedback report copies the corruption stage mutated in transit
    /// (0 without corruption).
    pub feedback_corrupted: u64,
    /// PLI deliveries the corruption stage rendered unparseable
    /// (0 without corruption).
    pub plis_suppressed: u64,
    /// Watchdog degradation steps fired (0 without a watchdog).
    pub watchdog_timeouts: u64,
    /// Distinct blind episodes the watchdog saw (0 without a watchdog):
    /// consecutive timeout steps count as one episode, closed by the
    /// next valid report.
    pub watchdog_episodes: u64,
    /// PLI messages the receiver emitted (including retries).
    pub plis_sent: u64,
    /// Forward packets eaten by chaos burst loss (0 without chaos).
    pub chaos_lost: u64,
    /// Duplicate forward packets injected by chaos (0 without chaos).
    pub chaos_duplicates: u64,
    /// Reference-chain breaks the receiver's decoder suffered.
    pub chain_breaks: u64,
    /// Session invariants violated (empty on a healthy run). Collected,
    /// not panicked: the harness reports these per cell and can shrink
    /// the chaos schedule that caused them.
    pub violations: Vec<InvariantViolation>,
    /// True if a supervisor cancelled the session via its
    /// [`SessionGuard`] before it finished: the result is a truncated
    /// prefix, and the pool reports the cell as timed out.
    pub cancelled: bool,
    /// Observability log: empty (and cost-free) unless the session was
    /// started through an `_obs` entry point with a mode other than
    /// [`ObsMode::Off`]. Stamped exclusively with simulation time, so
    /// its digest is byte-identical across reruns, worker counts, and
    /// cache hits.
    pub obs: ObsLog,
}

/// Per-captured-frame sender-side record for the display post-pass.
#[derive(Debug, Clone)]
enum SentFrame {
    Skipped { pts: Time, temporal: f64 },
    Encoded { frame: EncodedFrame, temporal: f64 },
}

/// Events in the session's queue.
enum Event {
    /// Capture the next frame.
    Capture,
    /// An encoded frame is ready to packetize (encode finished). Boxed:
    /// frames are ~30/s against thousands of packet events, and boxing
    /// halves the size of every queued event.
    EncodeDone(Box<EncodedFrame>),
    /// The pacer may have packets due.
    PacerTick,
    /// A packet reached the receiver.
    Arrival(Packet),
    /// The receiver flushes feedback.
    FeedbackFlush,
    /// A feedback report reached the sender.
    FeedbackArrive(FeedbackReport),
    /// The receiver checks for NACK-able gaps / due retries.
    NackPoll,
    /// The audio encoder emits its next 20 ms frame.
    AudioTick,
    /// A NACK batch reached the sender.
    NackArrive(NackBatch),
    /// A receiver PLI reached the sender.
    PliArrive,
    /// The feedback watchdog checks its deadline.
    WatchdogTick,
    /// The [`InjectedFault::Runaway`] fixture's self-renewing event.
    RunawayTick,
}

impl SessionResult {
    /// A zeroed result standing in for a computation that produced
    /// nothing: the harness pool substitutes this for quarantined
    /// (panicked or timed-out) cells so downstream table assembly stays
    /// deterministic without special-casing every consumer.
    pub fn empty() -> SessionResult {
        SessionResult {
            recorder: LatencyRecorder::new(),
            series: SeriesSet::new(),
            frames_captured: 0,
            frames_skipped: 0,
            frames_encoded: 0,
            events_processed: 0,
            packets_delivered: 0,
            queue_drops: 0,
            random_losses: 0,
            drops_handled: 0,
            retransmissions: 0,
            fec_recovered: 0,
            fec_parity_sent: 0,
            audio_latencies: Vec::new(),
            nacks_sent: 0,
            vbv_underflows: 0,
            reverse_lost: 0,
            reverse_duplicates: 0,
            reports_discarded: 0,
            rejected_reports: 0,
            rejected_by_reason: Vec::new(),
            feedback_corrupted: 0,
            plis_suppressed: 0,
            watchdog_timeouts: 0,
            watchdog_episodes: 0,
            plis_sent: 0,
            chaos_lost: 0,
            chaos_duplicates: 0,
            chain_breaks: 0,
            violations: Vec::new(),
            cancelled: false,
            obs: ObsLog::new(ObsMode::Off),
        }
    }
}

/// Bound on how long after the last fault clears the decoder's
/// reference chain may stay broken: a (PLI-requested) keyframe must
/// land and repair it within this window. Covers PLI retry backoff (up
/// to 1.2 s), a keyframe's transit, and backlog drain after a blackout.
/// Display may still be *stale* past this point (that latency tail is
/// exactly what the experiments measure), but it must be decodable.
const FREEZE_TERMINATION_BOUND: Dur = Dur::secs(4);

/// Sampling step when probing the post-fault capacity floor for the
/// rate-recovery invariant.
const RECOVERY_CAPACITY_PROBE: Dur = Dur::millis(500);

/// Runs one session over `trace` and returns its measurements.
///
/// If `cfg.chaos` is set, the fault schedule is generated from it and
/// applied; see [`run_session_chaos`] to supply an explicit schedule
/// (the shrinker's entry point).
pub fn run_session<T: BandwidthTrace>(trace: T, cfg: SessionConfig) -> SessionResult {
    run_session_obs(trace, cfg, ObsMode::Off)
}

/// [`run_session`] with an observability mode. `ObsMode::Off` is exact
/// passthrough (every hook inlines to an early return); the other modes
/// populate [`SessionResult::obs`] without perturbing the simulation —
/// event order, RNG draws, and all measurements stay byte-identical.
pub fn run_session_obs<T: BandwidthTrace>(
    trace: T,
    cfg: SessionConfig,
    obs: ObsMode,
) -> SessionResult {
    let schedule = cfg
        .chaos
        .map(|spec| ChaosSchedule::generate(spec, cfg.duration));
    run_session_chaos_obs(trace, cfg, schedule, obs)
}

/// [`run_session`] with an explicit chaos schedule, bypassing schedule
/// generation. Recovery bounds for the chaos invariants still come from
/// `cfg.chaos` (defaults apply when it is `None`). An empty or absent
/// schedule is exact passthrough: zero extra RNG draws, capacity
/// multiplied by exactly `1.0`.
pub fn run_session_chaos<T: BandwidthTrace>(
    trace: T,
    cfg: SessionConfig,
    schedule: Option<ChaosSchedule>,
) -> SessionResult {
    run_session_chaos_obs(trace, cfg, schedule, ObsMode::Off)
}

/// [`run_session_chaos`] with an observability mode — the shrinker uses
/// this to render the violating timeline of a minimized schedule.
pub fn run_session_chaos_obs<T: BandwidthTrace>(
    trace: T,
    cfg: SessionConfig,
    schedule: Option<ChaosSchedule>,
    obs_mode: ObsMode,
) -> SessionResult {
    let guard = SessionGuard::for_config(&cfg);
    run_session_guarded(trace, cfg, schedule, obs_mode, guard)
}

/// [`run_session`] with an explicit corruption schedule, bypassing
/// schedule generation (the corruption shrinker's entry point). The
/// chaos schedule, if any, still generates from `cfg.chaos`. An empty
/// or absent schedule is exact passthrough: zero extra RNG draws.
pub fn run_session_corrupt<T: BandwidthTrace>(
    trace: T,
    cfg: SessionConfig,
    corrupt: Option<CorruptSchedule>,
) -> SessionResult {
    run_session_corrupt_obs(trace, cfg, corrupt, ObsMode::Off)
}

/// [`run_session_corrupt`] with an observability mode — the shrinker
/// uses this to render the violating timeline of a minimized schedule.
pub fn run_session_corrupt_obs<T: BandwidthTrace>(
    trace: T,
    cfg: SessionConfig,
    corrupt: Option<CorruptSchedule>,
    obs_mode: ObsMode,
) -> SessionResult {
    let schedule = cfg
        .chaos
        .map(|spec| ChaosSchedule::generate(spec, cfg.duration));
    let guard = SessionGuard::for_config(&cfg);
    run_session_faults(trace, cfg, schedule, corrupt, obs_mode, guard)
}

/// The standard guarded entry point: an explicit chaos schedule, an
/// observability mode, and a [`SessionGuard`]. The corruption schedule
/// generates from `cfg.corrupt`; see [`run_session_faults`] to supply
/// one explicitly.
pub fn run_session_guarded<T: BandwidthTrace>(
    trace: T,
    cfg: SessionConfig,
    schedule: Option<ChaosSchedule>,
    obs_mode: ObsMode,
    guard: SessionGuard,
) -> SessionResult {
    let corrupt = cfg
        .corrupt
        .map(|spec| CorruptSchedule::generate(spec, cfg.duration));
    run_session_faults(trace, cfg, schedule, corrupt, obs_mode, guard)
}

/// The fully general entry point: explicit chaos AND corruption
/// schedules, an observability mode, and a [`SessionGuard`]. Every
/// other entry point delegates here with the standard guard for the
/// config, so the runaway budget and horizon are always armed.
pub fn run_session_faults<T: BandwidthTrace>(
    trace: T,
    cfg: SessionConfig,
    schedule: Option<ChaosSchedule>,
    corrupt: Option<CorruptSchedule>,
    obs_mode: ObsMode,
    guard: SessionGuard,
) -> SessionResult {
    let mut queue: EventQueue<Event> = EventQueue::new();
    // Solo sessions keep the plain allocating path: it is the historical
    // behaviour and the oracle the pooled kernel is tested against.
    let mut pool: BoxPool<EncodedFrame> = BoxPool::disabled();
    let mut state = SessionState::new(trace, cfg, schedule, corrupt, obs_mode, guard);
    state.start(&mut queue);
    while let Some(scheduled) = queue.pop() {
        if let Step::Stop = state.step(scheduled.at, scheduled.event, &mut queue, &mut pool) {
            break;
        }
    }
    // Drain without processing: whatever the loop left in the queue is
    // counted as in-flight for the conservation invariant.
    while let Some(leftover) = queue.pop() {
        state.note_leftover(&leftover.event);
    }
    state.finish()
}

/// Runs a batch of sessions interleaved over ONE shared event queue on
/// the calling thread — the multi-session kernel. Each session's
/// result is byte-identical to running it alone through
/// [`run_session`]: sessions share no state, and the shared queue's
/// FIFO tie-break preserves every per-session event order.
pub fn run_sessions<T: BandwidthTrace>(sessions: Vec<(T, SessionConfig)>) -> Vec<SessionResult> {
    run_sessions_obs(sessions, ObsMode::Off)
}

/// [`run_sessions`] with an observability mode applied to every session.
///
/// Runs through a throwaway allocating [`KernelWorkspace`]: identical
/// results to [`run_sessions_pooled`], without payload recycling. This
/// is the arena test oracle.
pub fn run_sessions_obs<T: BandwidthTrace>(
    sessions: Vec<(T, SessionConfig)>,
    obs_mode: ObsMode,
) -> Vec<SessionResult> {
    let mut ws = KernelWorkspace::allocating();
    run_sessions_pooled(sessions, obs_mode, &mut ws)
}

/// Reusable per-worker kernel scratch: the shared multi-session event
/// queue and the boxed-payload arena.
///
/// A worker that drives batch after batch through one workspace gets
/// allocation-free steady-state event processing: the queue's bucket
/// `Vec`s keep their capacity across [`EventQueue::reset`], and the
/// [`BoxPool`] free list carries recycled `EncodeDone` boxes from one
/// batch into the next. The arena counters accumulate across batches —
/// harvest them once per worker with [`KernelWorkspace::arena_stats`].
pub struct KernelWorkspace {
    queue: EventQueue<(u32, Event)>,
    pool: BoxPool<EncodedFrame>,
}

impl KernelWorkspace {
    /// A workspace whose arena recycles event payload boxes.
    pub fn new() -> Self {
        KernelWorkspace {
            queue: EventQueue::new(),
            pool: BoxPool::pooled(),
        }
    }

    /// A workspace whose arena is a pure allocating passthrough —
    /// behaviourally the pre-arena kernel, used as the test oracle.
    pub fn allocating() -> Self {
        KernelWorkspace {
            queue: EventQueue::new(),
            pool: BoxPool::disabled(),
        }
    }

    /// Arena counters accumulated over every batch this workspace ran.
    pub fn arena_stats(&self) -> ArenaStats {
        self.pool.stats()
    }

    /// Discards all scratch state — used after an aborted (panicked)
    /// batch leaves the queue and free list possibly inconsistent —
    /// while carrying the arena's lifetime counters forward.
    /// `outstanding` resets to zero: boxes that were live during the
    /// unwind were dropped with the queue.
    pub fn quarantine_reset(&mut self) {
        let stats = self.pool.stats();
        let pooled = self.pool.is_pooled();
        self.queue = EventQueue::new();
        self.pool = if pooled {
            BoxPool::pooled()
        } else {
            BoxPool::disabled()
        };
        self.pool.set_stats(ArenaStats {
            outstanding: 0,
            ..stats
        });
    }
}

impl Default for KernelWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

/// [`run_sessions_obs`] against a caller-owned [`KernelWorkspace`],
/// recycling event-payload boxes through its arena. Results are
/// byte-identical to [`run_sessions`] / solo [`run_session`] runs: the
/// arena only changes *where* a payload box's memory comes from, never
/// its contents or the event order.
pub fn run_sessions_pooled<T: BandwidthTrace>(
    sessions: Vec<(T, SessionConfig)>,
    obs_mode: ObsMode,
    ws: &mut KernelWorkspace,
) -> Vec<SessionResult> {
    let queue = &mut ws.queue;
    let pool = &mut ws.pool;
    queue.reset();
    let mut states: Vec<(SessionState<T>, bool)> = Vec::with_capacity(sessions.len());
    for (session, (trace, cfg)) in sessions.into_iter().enumerate() {
        let schedule = cfg
            .chaos
            .map(|spec| ChaosSchedule::generate(spec, cfg.duration));
        let corrupt = cfg
            .corrupt
            .map(|spec| CorruptSchedule::generate(spec, cfg.duration));
        let guard = SessionGuard::for_config(&cfg);
        let mut state = SessionState::new(trace, cfg, schedule, corrupt, obs_mode, guard);
        state.start(&mut TaggedSink {
            queue,
            session: session as u32,
        });
        states.push((state, false));
    }
    while let Some(scheduled) = queue.pop() {
        let (session, event) = scheduled.event;
        let (state, stopped) = &mut states[session as usize];
        if *stopped {
            // A stopped session's leftovers count as in-flight, exactly
            // like the single-session post-loop drain.
            state.note_leftover(&event);
            reclaim(event, pool);
            continue;
        }
        let mut sink = TaggedSink { queue, session };
        if let Step::Stop = state.step(scheduled.at, event, &mut sink, pool) {
            *stopped = true;
        }
    }
    states
        .into_iter()
        .map(|(state, _stopped)| state.finish())
        .collect()
}

/// Returns an event's boxed payload (if any) to the worker's arena.
fn reclaim(event: Event, pool: &mut BoxPool<EncodedFrame>) {
    if let Event::EncodeDone(frame) = event {
        pool.recycle(frame);
    }
}

/// Where a stepped session schedules its future events. The
/// single-session kernel hands the state machine its private queue; the
/// multi-session kernel hands it a [`TaggedSink`] that stamps the
/// session id onto every push.
trait EventSink {
    /// Schedules `event` at `at`.
    fn push(&mut self, at: Time, event: Event);
}

impl EventSink for EventQueue<Event> {
    fn push(&mut self, at: Time, event: Event) {
        EventQueue::push(self, at, event);
    }
}

/// A view of the shared multi-session queue scoped to one session.
struct TaggedSink<'a> {
    queue: &'a mut EventQueue<(u32, Event)>,
    session: u32,
}

impl EventSink for TaggedSink<'_> {
    fn push(&mut self, at: Time, event: Event) {
        self.queue.push(at, (self.session, event));
    }
}

/// What [`SessionState::step`] tells the kernel after each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// Keep stepping.
    Continue,
    /// The session is done (end of drain window, guard trip, or
    /// cancellation): stop feeding it events and route the remainder to
    /// [`SessionState::note_leftover`].
    Stop,
}

/// The simulation's bounded omniscient view of sent video packets, used
/// to materialize FEC-reconstructed packets (a real XOR decoder holds
/// the actual recovered bytes; the metadata is identical).
///
/// Packet seqs are handed out monotonically, so the window is a plain
/// ring of packets in seq order: O(1) insert/evict, binary-search get —
/// the struct-of-arrays replacement for the old `BTreeMap`, with no
/// panic path when the window is empty.
#[derive(Debug, Default)]
struct SentVideoWindow {
    packets: VecDeque<Packet>,
}

impl SentVideoWindow {
    /// Records a sent packet, evicting the oldest past the window bound.
    fn insert(&mut self, p: Packet) {
        debug_assert!(
            self.packets.back().is_none_or(|b| b.seq < p.seq),
            "sent-video seqs must be monotone"
        );
        self.packets.push_back(p);
        while self.packets.len() > SENT_VIDEO_WINDOW {
            self.packets.pop_front();
        }
    }

    /// Looks a packet up by seq; `None` when evicted, never recorded,
    /// or the window is empty.
    fn get(&self, seq: u64) -> Option<Packet> {
        let idx = self.packets.partition_point(|p| p.seq < seq);
        self.packets.get(idx).filter(|p| p.seq == seq).copied()
    }
}

/// Frame completion instants, dense by frame index (video frame indexes
/// start at 0 and grow by 1 per capture) — the struct-of-arrays
/// replacement for the old `BTreeMap<u64, Time>`.
#[derive(Debug, Default)]
struct CompletedFrames {
    slots: Vec<Option<Time>>,
}

impl CompletedFrames {
    /// Records the first completion of `frame_index` (duplicates and
    /// FEC/RTX re-completions keep the earliest instant).
    fn note(&mut self, frame_index: u64, at: Time) {
        let idx = frame_index as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        let slot = &mut self.slots[idx];
        if slot.is_none() {
            *slot = Some(at);
        }
    }

    /// The completion instant of `frame_index`, if it ever assembled.
    fn get(&self, frame_index: u64) -> Option<Time> {
        self.slots.get(frame_index as usize).copied().flatten()
    }
}

/// Staleness (in frame intervals) of a late frame. A late verdict
/// implies a completion record; if bookkeeping ever desyncs, this
/// records a [`Invariant::FiniteMetrics`] violation and displays the
/// frame un-stale instead of aborting the cell.
fn late_staleness(
    latency: Option<Dur>,
    fps: u32,
    pts: Time,
    checker: &mut InvariantChecker,
) -> f64 {
    match latency {
        Some(l) => l / frame_interval(fps),
        None => {
            checker.violate(
                Invariant::FiniteMetrics,
                format!("late frame at pts {pts} has no completion record"),
            );
            0.0
        }
    }
}

/// One session's complete state, stepped event-by-event by the kernel.
///
/// Everything the historical monolithic loop held in locals lives here,
/// so the kernel can interleave thousands of sessions on one thread:
/// pop an event, call [`SessionState::step`], repeat.
struct SessionState<T: BandwidthTrace> {
    cfg: SessionConfig,
    guard: SessionGuard,
    schedule: Option<ChaosSchedule>,

    // --- sender ---------------------------------------------------------
    source: VideoSource,
    encoder: Encoder,
    cc: Box<dyn CongestionController>,
    controller: Option<AdaptiveController>,
    packetizer: Packetizer,
    pacer: Pacer,
    rtx_buffer: RtxBuffer,
    fec_encoder: Option<FecEncoder>,
    rtx_tokens_bits: f64,
    rtx_tokens_updated: Time,
    watchdog: Option<FeedbackWatchdog>,
    blind_skip_toggle: bool,
    last_pli: Time,
    last_report_seq: Option<u64>,
    reports_discarded: u64,
    /// Sanitizes every arriving report before any estimator sees it.
    /// Always armed: on clean runs it draws no randomness and rejects
    /// nothing, so it costs only the per-report field scan.
    validator: FeedbackValidator,

    // --- network --------------------------------------------------------
    link: Link<ChaosTrace<T>>,
    fwd_chaos: Option<ForwardChaos>,
    reverse: ReversePath,
    /// Control-plane corruption applied to delivered feedback/PLI
    /// copies at the reverse path's send boundary. `None` is exact
    /// passthrough.
    corruptor: Option<FeedbackCorruptor>,
    acct: ForwardAcct,

    // --- receiver -------------------------------------------------------
    assembler: FrameAssembler,
    feedback: FeedbackBuilder,
    nack_gen: NackGenerator,
    fec_decoder: FecDecoder,
    pli: PliRequester,
    sent_video: SentVideoWindow,
    completed: CompletedFrames,
    audio_seq_count: u64,
    audio_latencies: Vec<(Time, Dur)>,

    // --- bookkeeping ----------------------------------------------------
    checker: InvariantChecker,
    obs: ObsLog,
    /// Violations already mirrored into the obs log (index into the
    /// checker's first-flagged order).
    obs_violations_seen: usize,
    /// Chaos segments announced as the event clock crosses their start.
    /// Empty when obs is off, so the step-top scan is free.
    seg_meta: Vec<(Time, Time, &'static str)>,
    seg_cursor: usize,
    chaos_bounds: ChaosSpec,
    chaos_clear: Option<Time>,
    recovery_deadline: Option<Time>,
    max_target_after_deadline: f64,
    last_event_at: Time,
    sent: Vec<SentFrame>,
    series: SeriesSet,
    frames_encoded: u64,
    /// Hot-path scratch buffers, reused across the whole session so
    /// packetization, pacer release, and NACK admission stop allocating
    /// per event.
    pkt_scratch: Vec<Packet>,
    release_scratch: Vec<Packet>,
    affordable_scratch: Vec<u64>,

    // --- kernel ---------------------------------------------------------
    capture_end: Time,
    hard_end: Time,
    cancelled: bool,
    runaway_armed: bool,
    /// Events this session has processed (the per-session equivalent of
    /// the old private queue's popped counter).
    popped: u64,
    /// True while a `PacerTick` is in the queue. One outstanding tick
    /// is always enough: `Pacer::next_release` only moves forward, and
    /// until the pending tick fires every re-poll computes the same
    /// release instant — so deduplicating changes no release time, it
    /// only stops the queue population from growing without bound (the
    /// E20 event storm).
    pacer_tick_pending: bool,
}

impl<T: BandwidthTrace> SessionState<T> {
    /// Builds the initial state. Mirrors the historical setup section
    /// exactly, including its RNG draw order.
    fn new(
        trace: T,
        cfg: SessionConfig,
        schedule: Option<ChaosSchedule>,
        corrupt: Option<CorruptSchedule>,
        obs_mode: ObsMode,
        guard: SessionGuard,
    ) -> SessionState<T> {
        let schedule = schedule.filter(|s| !s.is_empty());
        let corrupt = corrupt.filter(|s| !s.is_empty());
        let source = VideoSource::new(cfg.content.profile(), cfg.resolution, cfg.fps, cfg.seed);
        let mut enc_cfg = EncoderConfig::rtc(cfg.start_rate_bps, cfg.fps);
        enc_cfg.capture_resolution = cfg.resolution;
        enc_cfg.temporal_layers = cfg.temporal_layers;
        let encoder = Encoder::new(enc_cfg);
        let cc = cfg.scheme.cc.build(cfg.start_rate_bps);
        let controller = cfg.scheme.adaptive.map(|acfg| {
            let mut ctl = AdaptiveController::new(acfg, cfg.fps);
            // Tell the controller what the transport adds around the
            // encoder's payload: ~4% packet headers, plus FEC parity, plus
            // the audio flow's wire rate.
            let mut factor = 1.04;
            if cfg.enable_fec {
                factor *= 1.0 + 1.0 / cfg.fec_group_size as f64;
            }
            let reserved = if cfg.enable_audio {
                // Audio wire rate: payload bitrate plus 40 B of headers on
                // each of the 50 packets per second.
                cfg.audio_bitrate_bps + 40.0 * 8.0 * 50.0
            } else {
                0.0
            };
            ctl.set_rate_overheads(factor, reserved);
            ctl
        });
        // The link always sees a chaos-wrapped trace: outside every capacity
        // fault (and always, for the empty schedule) the wrapper multiplies
        // by exactly 1.0, so chaos-free sessions stay byte-identical.
        let link = Link::new(
            ChaosTrace::new(trace, schedule.clone().unwrap_or_default()),
            cfg.link,
            cfg.seed,
        );
        // Per-packet chaos (burst loss, reordering, duplication) applied
        // after the link's delivery decision, at the send boundary — the
        // link itself enforces FIFO, so reordering must live outside it.
        let fwd_chaos = schedule
            .as_ref()
            .map(|s| ForwardChaos::new(s.clone(), cfg.seed));
        let obs = ObsLog::new(obs_mode);
        let seg_meta: Vec<(Time, Time, &'static str)> = if obs.enabled() {
            let mut meta: Vec<_> = schedule
                .as_ref()
                .map(|s| {
                    s.segments
                        .iter()
                        .map(|seg| (seg.from, seg.until, seg.kind.name()))
                        .collect()
                })
                .unwrap_or_default();
            meta.sort_by_key(|&(from, _, _)| from);
            meta
        } else {
            Vec::new()
        };
        // Recovery invariants are anchored to the end of the last fault.
        let chaos_bounds = cfg.chaos.unwrap_or_else(|| ChaosSpec::new(0, 1.0));
        let chaos_clear = schedule.as_ref().and_then(|s| s.last_fault_end());
        let recovery_deadline = chaos_clear.map(|c| c + chaos_bounds.recovery_within);
        let expected_frames = (cfg.duration.as_secs_f64() * cfg.fps as f64).ceil() as usize + 1;
        let capture_end = Time::ZERO + cfg.duration;
        SessionState {
            guard,
            source,
            encoder,
            cc,
            controller,
            packetizer: Packetizer::new(),
            pacer: Pacer::new(cfg.start_rate_bps, 2.5),
            // WebRTC-flavoured RTX: 30 ms NACK retries, give up after the
            // playout deadline (PLI takes over), 1 s of sender history.
            rtx_buffer: RtxBuffer::new(Dur::SECOND, 2048),
            fec_encoder: cfg.enable_fec.then(|| FecEncoder::new(cfg.fec_group_size)),
            rtx_tokens_bits: RTX_INITIAL_TOKENS_BITS,
            rtx_tokens_updated: Time::ZERO,
            watchdog: cfg.watchdog.map(FeedbackWatchdog::new),
            blind_skip_toggle: false,
            last_pli: Time::ZERO,
            last_report_seq: None,
            reports_discarded: 0,
            validator: FeedbackValidator::new(),
            link,
            fwd_chaos,
            corruptor: corrupt.map(|s| FeedbackCorruptor::new(s, cfg.seed)),
            // All receiver → sender traffic crosses the (possibly impaired)
            // reverse path; the receiver keeps PLI requests alive until a
            // post-request keyframe actually lands.
            reverse: ReversePath::new(cfg.reverse_path, cfg.reverse_delay, cfg.seed),
            acct: ForwardAcct::default(),
            assembler: FrameAssembler::new(),
            feedback: FeedbackBuilder::new(),
            nack_gen: NackGenerator::new(Dur::millis(30), 5, cfg.max_playout_delay),
            fec_decoder: FecDecoder::new(),
            pli: PliRequester::new(),
            sent_video: SentVideoWindow::default(),
            completed: CompletedFrames::default(),
            audio_seq_count: 0,
            audio_latencies: Vec::new(),
            checker: InvariantChecker::new(),
            obs,
            obs_violations_seen: 0,
            seg_meta,
            seg_cursor: 0,
            chaos_bounds,
            chaos_clear,
            recovery_deadline,
            max_target_after_deadline: 0.0,
            last_event_at: Time::ZERO,
            sent: Vec::with_capacity(expected_frames),
            series: SeriesSet::new(),
            frames_encoded: 0,
            pkt_scratch: Vec::new(),
            release_scratch: Vec::new(),
            affordable_scratch: Vec::new(),
            capture_end,
            hard_end: capture_end + DRAIN_GRACE,
            cancelled: false,
            runaway_armed: false,
            popped: 0,
            pacer_tick_pending: false,
            cfg,
            schedule,
        }
    }

    /// Schedules the session's seed events (same order as the
    /// historical loop, so FIFO tie-breaks are preserved).
    fn start(&mut self, sink: &mut impl EventSink) {
        sink.push(Time::ZERO, Event::Capture);
        sink.push(
            Time::ZERO + self.cfg.feedback_interval,
            Event::FeedbackFlush,
        );
        if self.cfg.enable_rtx {
            sink.push(Time::ZERO + NACK_POLL_EVERY, Event::NackPoll);
        }
        if self.watchdog.is_some() {
            sink.push(Time::ZERO + self.cfg.feedback_interval, Event::WatchdogTick);
        }
        if self.cfg.enable_audio {
            sink.push(Time::ZERO, Event::AudioTick);
        }
    }

    /// Counts an unprocessed leftover event: queued arrivals are
    /// in-flight packets for the conservation invariant.
    fn note_leftover(&mut self, event: &Event) {
        if matches!(event, Event::Arrival(_)) {
            self.acct.inflight += 1;
        }
    }

    /// Mirrors any violations the checker flagged since the last call
    /// into the observability log, stamped at `at`.
    fn note_violations(&mut self, at: Time) {
        if !self.obs.enabled() {
            return;
        }
        let all = self.checker.violations();
        while self.obs_violations_seen < all.len() {
            let v = &all[self.obs_violations_seen];
            self.obs.record(at, || ObsEvent::InvariantViolated {
                name: v.invariant.name(),
                detail: v.detail.clone(),
            });
            self.obs_violations_seen += 1;
        }
    }

    /// Processes one popped event. The check order (monotonic clock,
    /// budget, horizon, cancellation, drain deadline, fault injection,
    /// chaos-segment announcements, then the event itself) matches the
    /// historical loop exactly, so guard trips and violation details
    /// are byte-identical.
    fn step(
        &mut self,
        now: Time,
        event: Event,
        sink: &mut impl EventSink,
        pool: &mut BoxPool<EncodedFrame>,
    ) -> Step {
        self.popped += 1;
        if now < self.last_event_at {
            self.checker.violate(
                Invariant::MonotonicDelivery,
                format!(
                    "event clock ran backwards: {now} after {}",
                    self.last_event_at
                ),
            );
            self.note_violations(now);
        }
        self.last_event_at = now;
        // Runaway guard. Details carry simulation values only (the
        // popped-event count at trip time is `budget + 1` on every
        // run), so the violation is byte-identical at any worker count
        // and on cache hits.
        if self.guard.over_budget(self.popped) {
            self.checker.violate(
                Invariant::RunawayTermination,
                format!(
                    "event budget exhausted at {now}: {} events popped (budget {})",
                    self.popped, self.guard.max_events
                ),
            );
            self.note_violations(now);
            self.note_leftover(&event);
            reclaim(event, pool);
            return Step::Stop;
        }
        if self.guard.over_horizon(now) {
            self.checker.violate(
                Invariant::RunawayTermination,
                format!("sim-time horizon {} exceeded at {now}", self.guard.horizon),
            );
            self.note_violations(now);
            self.note_leftover(&event);
            reclaim(event, pool);
            return Step::Stop;
        }
        if self.guard.cancelled(self.popped) {
            self.cancelled = true;
            self.note_leftover(&event);
            reclaim(event, pool);
            return Step::Stop;
        }
        if now > self.hard_end {
            // The popped event is past the session's end; if it was an
            // arrival, the packet is in flight for conservation.
            self.note_leftover(&event);
            reclaim(event, pool);
            return Step::Stop;
        }
        match self.cfg.inject {
            InjectedFault::None => {}
            InjectedFault::Panic { at } => {
                if now >= at {
                    panic!("injected panic fixture at {at}");
                }
            }
            InjectedFault::Runaway { at } => {
                if now >= at && !self.runaway_armed {
                    self.runaway_armed = true;
                    sink.push(now, Event::RunawayTick);
                }
            }
        }
        while self.seg_cursor < self.seg_meta.len() && self.seg_meta[self.seg_cursor].0 <= now {
            let (from, until, kind) = self.seg_meta[self.seg_cursor];
            self.obs
                .record(now, || ObsEvent::ChaosSegmentEntered { kind, from, until });
            self.seg_cursor += 1;
        }
        match event {
            Event::Capture => self.on_capture(now, sink, pool),
            Event::EncodeDone(encoded) => {
                self.on_encode_done(now, &encoded, sink);
                pool.recycle(encoded);
            }
            Event::PacerTick => {
                self.pacer_tick_pending = false;
                self.release_pacer(sink, now);
            }
            Event::Arrival(packet) => self.on_arrival(now, packet),
            Event::FeedbackFlush => self.on_feedback_flush(now, sink),
            Event::FeedbackArrive(report) => self.on_feedback_arrive(now, &report),
            Event::NackPoll => self.on_nack_poll(now, sink),
            Event::AudioTick => self.on_audio_tick(now, sink),
            Event::NackArrive(batch) => self.on_nack_arrive(now, &batch, sink),
            Event::PliArrive => {
                // Sender-side IDR generation, rate-limited so a burst of
                // (possibly duplicated) PLIs coalesces into one keyframe.
                if now.saturating_since(self.last_pli) >= PLI_MIN_INTERVAL {
                    self.encoder.force_idr();
                    self.last_pli = now;
                }
            }
            Event::WatchdogTick => self.on_watchdog_tick(now, sink),
            Event::RunawayTick => {
                // The fixture's storm: re-schedule at the current
                // instant so simulation time never advances and the
                // event budget is what stops the session.
                sink.push(now, Event::RunawayTick);
            }
        }
        Step::Continue
    }

    fn on_capture(
        &mut self,
        now: Time,
        sink: &mut impl EventSink,
        pool: &mut BoxPool<EncodedFrame>,
    ) {
        let frame = self.source.next_frame();
        debug_assert_eq!(frame.pts, now, "capture clock drift");
        self.obs
            .record(now, || ObsEvent::FrameCaptured { index: frame.index });
        // While the feedback loop is blind, optionally skip every
        // other frame (both schemes): at a given target rate this
        // halves the data fired into an unobservable network.
        let blind_skip = self
            .watchdog
            .as_ref()
            .is_some_and(|wd| wd.is_degraded() && wd.config().skip_while_blind)
            && {
                self.blind_skip_toggle = !self.blind_skip_toggle;
                self.blind_skip_toggle
            };
        let decision = if blind_skip {
            self.encoder.skip_frame();
            FrameDecision::Skip
        } else {
            match self.controller.as_mut() {
                Some(ctl) => ctl.on_frame(&frame, now, &mut self.encoder),
                None => FrameDecision::Encode,
            }
        };
        match decision {
            FrameDecision::Skip => {
                self.sent.push(SentFrame::Skipped {
                    pts: frame.pts,
                    temporal: frame.complexity.temporal,
                });
            }
            FrameDecision::Encode => {
                let encoded = self.encoder.encode(&frame, now);
                self.frames_encoded += 1;
                self.obs.record(now, || ObsEvent::FrameEncoded {
                    index: encoded.index,
                    size_bytes: encoded.size_bytes,
                    qp: encoded.qp.value(),
                    target_bps: self.encoder.target_bps(),
                });
                if encoded.frame_type.is_intra() {
                    self.obs.record(now, || ObsEvent::KeyframeEmitted);
                }
                if self.cfg.record_series {
                    self.series.push("qp", now, encoded.qp.value());
                    self.series.push(
                        "send_rate_bps",
                        now,
                        encoded.size_bits() as f64 * self.cfg.fps as f64,
                    );
                }
                sink.push(encoded.encoded_at, Event::EncodeDone(pool.alloc(encoded)));
                self.sent.push(SentFrame::Encoded {
                    frame: encoded,
                    temporal: frame.complexity.temporal,
                });
            }
        }
        let next_pts = self.source.pts_of(frame.index + 1);
        if next_pts < self.capture_end {
            sink.push(next_pts, Event::Capture);
        }
    }

    fn on_encode_done(&mut self, now: Time, encoded: &EncodedFrame, sink: &mut impl EventSink) {
        if let Some(sched) = self.schedule.as_ref() {
            self.packetizer.set_payload_mtu(sched.payload_mtu(now));
        }
        let mut pkts = mem::take(&mut self.pkt_scratch);
        self.packetizer.packetize_into(encoded, &mut pkts);
        if let Some(fec) = self.fec_encoder.as_mut() {
            for p in pkts.drain(..) {
                self.sent_video.insert(p);
                let parity = fec.on_media_packet(&p, || self.packetizer.take_seq(), now);
                self.pacer.enqueue(std::iter::once(p).chain(parity));
            }
        } else {
            self.pacer.enqueue(pkts.drain(..));
        }
        self.pkt_scratch = pkts;
        self.release_pacer(sink, now);
    }

    fn on_arrival(&mut self, now: Time, packet: Packet) {
        self.acct.arrivals += 1;
        self.obs
            .record(now, || ObsEvent::PacketDelivered { seq: packet.seq });
        if now < packet.send_time {
            self.checker.violate(
                Invariant::MonotonicDelivery,
                format!(
                    "packet seq {} arrived at {now} before its send time {}",
                    packet.seq, packet.send_time
                ),
            );
            self.note_violations(now);
        }
        self.feedback.on_packet(&packet, now);
        if self.cfg.enable_rtx {
            self.nack_gen.on_packet(packet.seq, now);
        }
        if self.cfg.enable_fec && packet.kind != MediaKind::Fec {
            // Every non-parity arrival in a covered span counts
            // toward that span's recovery bookkeeping.
            for seq in self.fec_decoder.on_media_packet(packet.seq) {
                if let Some(rec) = self.sent_video.get(seq) {
                    self.nack_gen.on_packet(seq, now);
                    if let Some(done) = self.assembler.push(&rec, now) {
                        // Only a COMPLETE keyframe satisfies an
                        // outstanding PLI (a lone fragment may
                        // never assemble; retries must go on).
                        if done.is_keyframe {
                            self.pli.on_keyframe(rec.send_time);
                        }
                        self.completed.note(done.frame_index, done.complete_at);
                    }
                }
            }
        }
        match packet.kind {
            MediaKind::Audio => {
                self.audio_latencies
                    .push((packet.pts, now.saturating_since(packet.pts)));
            }
            MediaKind::Fec => {
                for seq in self.fec_decoder.on_parity_packet(&packet) {
                    if let Some(rec) = self.sent_video.get(seq) {
                        self.nack_gen.on_packet(seq, now);
                        if let Some(done) = self.assembler.push(&rec, now) {
                            if done.is_keyframe {
                                self.pli.on_keyframe(rec.send_time);
                            }
                            self.completed.note(done.frame_index, done.complete_at);
                        }
                    }
                }
            }
            MediaKind::Video => {
                if let Some(done) = self.assembler.push(&packet, now) {
                    if done.is_keyframe {
                        self.pli.on_keyframe(packet.send_time);
                    }
                    self.completed.note(done.frame_index, done.complete_at);
                }
            }
        }
    }

    fn on_feedback_flush(&mut self, now: Time, sink: &mut impl EventSink) {
        let backlog = self.link.backlog_bytes(now);
        self.checker.check(
            Invariant::BoundedBacklog,
            backlog <= self.cfg.link.queue_capacity_bytes,
            || {
                format!(
                    "link backlog {backlog} B exceeds queue capacity {} B at {now}",
                    self.cfg.link.queue_capacity_bytes
                )
            },
        );
        self.note_violations(now);
        if let Some(report) = self.feedback.flush(now) {
            // Reported losses mean some frame will be
            // undecodable: arm (or keep alive) the keyframe
            // request. It stays armed until a post-request
            // keyframe actually arrives.
            if report.lost_count() > 0 {
                self.pli.request(now);
            }
            // Each delivered copy is corrupted independently — a
            // duplicated reverse path can deliver one honest and one
            // mutated copy of the same report.
            for at in self.reverse.transit(now).into_iter().flatten() {
                let mut copy = report.clone();
                if let Some(c) = self.corruptor.as_mut() {
                    c.corrupt(&mut copy, now);
                }
                sink.push(at, Event::FeedbackArrive(copy));
            }
        }
        // PLI emission (first send and backoff retries) shares
        // the feedback cadence — and the impaired reverse path.
        if self.pli.poll(now) {
            self.obs.record(now, || ObsEvent::PliSent);
            for at in self.reverse.transit(now).into_iter().flatten() {
                // A corrupted PLI is unparseable at the sender: the
                // delivery slot is consumed but nothing arrives. The
                // requester's retry loop keeps the request alive.
                if self.corruptor.as_mut().is_some_and(|c| c.suppress_pli(now)) {
                    continue;
                }
                sink.push(at, Event::PliArrive);
            }
        }
        let next = now + self.cfg.feedback_interval;
        if next <= self.hard_end {
            sink.push(next, Event::FeedbackFlush);
        }
    }

    fn on_feedback_arrive(&mut self, now: Time, report: &FeedbackReport) {
        // Report integrity: a duplicated or reordered reverse
        // path may deliver a report twice, or deliver an older
        // report after a newer one. Both would corrupt GCC's
        // inter-arrival model and the drop detector's windows —
        // discard them before any estimator sees them.
        if self
            .last_report_seq
            .is_some_and(|last| report.report_seq <= last)
        {
            self.reports_discarded += 1;
            return;
        }
        // Field-level sanitation, after the cheap duplicate gate and
        // before ANY estimator state advances. A rejected report is
        // dropped whole: it does not move the freshness gate (the next
        // honest report must still be accepted) and it does NOT reset
        // the watchdog's feedback deadline — an attacker feeding
        // garbage looks like silence, and sustained garbage trips
        // `Degraded` exactly like a blackout does.
        if let Err(reason) = self.validator.check(report, self.last_report_seq) {
            self.obs.record(now, || ObsEvent::FeedbackRejected {
                report_seq: report.report_seq,
                reason,
            });
            return;
        }
        self.last_report_seq = Some(report.report_seq);
        self.obs.record(now, || ObsEvent::FeedbackReceived {
            report_seq: report.report_seq,
            lost: report.lost_count() as u64,
        });
        let old_target = self.encoder.target_bps();
        if let Some(wd) = self.watchdog.as_mut() {
            wd.on_valid_report(now);
        }
        let gcc_target = self.cc.on_feedback(report, now);
        match self.controller.as_mut() {
            Some(ctl) => {
                ctl.on_feedback(report, gcc_target, now, &mut self.encoder);
            }
            None => {
                // Baseline: production slow path.
                self.encoder.set_target_bitrate(gcc_target);
            }
        }
        self.pacer
            .set_target_bitrate(self.encoder.target_bps().max(PACER_FLOOR_BPS));
        let target = self.encoder.target_bps();
        if target != old_target {
            self.obs.record(now, || ObsEvent::TargetChanged {
                old_bps: old_target,
                new_bps: target,
                reason: self.cc.decision_reason(),
            });
        }
        if !target.is_finite() || !gcc_target.is_finite() {
            self.checker.violate(
                Invariant::FiniteMetrics,
                format!("non-finite rate at {now}: encoder {target}, gcc {gcc_target}"),
            );
            self.note_violations(now);
        }
        // Recovery-within-T: the target counts as recovered if
        // it reaches the goal at any point between the last
        // fault clearing and the deadline.
        if self.chaos_clear.is_some_and(|c| now >= c)
            && self.recovery_deadline.is_some_and(|d| now <= d)
        {
            self.max_target_after_deadline = self.max_target_after_deadline.max(target);
        }
        if self.cfg.record_series {
            self.series
                .push("target_bps", now, self.encoder.target_bps());
            self.series.push("gcc_target_bps", now, gcc_target);
            if let Some(gcc) = self.cc.as_any().downcast_ref::<ravel_cc::Gcc>() {
                let state = match gcc.detector_state() {
                    ravel_cc::BandwidthUsage::Normal => 0.0,
                    ravel_cc::BandwidthUsage::Overusing => 1.0,
                    ravel_cc::BandwidthUsage::Underusing => -1.0,
                };
                self.series.push("gcc_detector", now, state);
                self.series.push("gcc_trend_ms", now, gcc.trend_ms());
            }
            self.series
                .push("capacity_bps", now, self.link.trace().rate_bps(now));
            self.series.push(
                "link_queue_ms",
                now,
                self.link.queue_delay(now).as_millis_f64(),
            );
            self.series.push(
                "pacer_queue_ms",
                now,
                self.pacer.drain_time().as_millis_f64(),
            );
        }
    }

    fn on_nack_poll(&mut self, now: Time, sink: &mut impl EventSink) {
        let abandoned_before = self.nack_gen.abandoned();
        let batch = self.nack_gen.poll(now);
        if self.nack_gen.abandoned() > abandoned_before {
            // RTX gave up on a gap: some frame will never
            // assemble and the reference chain will break when
            // playout reaches it. Feedback already reported the
            // loss (possibly while an earlier PLI was pending and
            // got satisfied by a keyframe that predates this
            // gap), so this is the receiver's only remaining
            // signal — recovery is the PLI path's job now.
            self.pli.request(now);
        }
        if let Some(batch) = batch {
            for at in self.reverse.transit(now).into_iter().flatten() {
                sink.push(at, Event::NackArrive(batch.clone()));
            }
        }
        let next = now + NACK_POLL_EVERY;
        if next <= self.hard_end {
            sink.push(next, Event::NackPoll);
        }
    }

    fn on_audio_tick(&mut self, now: Time, sink: &mut impl EventSink) {
        // One Opus frame: bitrate x 20 ms of payload + headers.
        let payload = ((self.cfg.audio_bitrate_bps * AUDIO_TICK.as_secs_f64()) / 8.0).ceil() as u64;
        let audio = Packet {
            kind: MediaKind::Audio,
            seq: self.packetizer.take_seq(),
            frame_index: AUDIO_INDEX_BASE + self.audio_seq_count,
            fragment: 0,
            num_fragments: 1,
            size_bytes: payload + ravel_net::packet::HEADER_BYTES,
            pts: now,
            send_time: now,
            is_keyframe: false,
        };
        self.audio_seq_count += 1;
        // Audio bypasses the video pacer (WebRTC sends it
        // directly) but shares the bottleneck and feedback.
        if self.cfg.enable_rtx {
            self.rtx_buffer.store(&audio, now);
        }
        self.send_forward(sink, audio, now);
        let next = now + AUDIO_TICK;
        if next < self.capture_end {
            sink.push(next, Event::AudioTick);
        }
    }

    fn on_nack_arrive(&mut self, now: Time, batch: &NackBatch, sink: &mut impl EventSink) {
        // Refill the RTX bucket, capped at one burst.
        let elapsed = now.saturating_since(self.rtx_tokens_updated);
        self.rtx_tokens_updated = now;
        self.rtx_tokens_bits = (self.rtx_tokens_bits
            + RTX_RATE_FRACTION * self.encoder.target_bps() * elapsed.as_secs_f64())
        .min(RTX_BURST_BITS);
        let mut affordable = mem::take(&mut self.affordable_scratch);
        affordable.clear();
        for &seq in batch.seqs.iter() {
            if self.rtx_tokens_bits >= RTX_GRANT_BITS {
                self.rtx_tokens_bits -= RTX_GRANT_BITS;
                affordable.push(seq);
            } else {
                break;
            }
        }
        let packets = self.rtx_buffer.retransmit(&affordable);
        self.affordable_scratch = affordable;
        if !packets.is_empty() {
            self.pacer.enqueue(packets);
            self.release_pacer(sink, now);
        }
    }

    fn on_watchdog_tick(&mut self, now: Time, sink: &mut impl EventSink) {
        if let Some(wd) = self.watchdog.as_mut() {
            // Capture ends at `capture_end`; the receiver goes
            // quiet once the pipe drains, so missing feedback in
            // the drain tail is expected, not a blind episode.
            if now <= self.capture_end && wd.poll(now) {
                // No valid report within the timeout: back the
                // target off toward the floor. The baseline gets
                // the same production-equivalent cut through the
                // slow path; the adaptive controller routes it
                // through its Degraded phase (fast reconfigure +
                // Recover hand-off when feedback resumes).
                let old_target = self.encoder.target_bps();
                let target = wd.apply_backoff(old_target);
                match self.controller.as_mut() {
                    Some(ctl) => ctl.on_feedback_timeout(target, now, &mut self.encoder),
                    None => self.encoder.set_target_bitrate(target),
                }
                self.pacer
                    .set_target_bitrate(self.encoder.target_bps().max(PACER_FLOOR_BPS));
                let new_target = self.encoder.target_bps();
                if new_target != old_target {
                    self.obs.record(now, || ObsEvent::TargetChanged {
                        old_bps: old_target,
                        new_bps: new_target,
                        reason: "watchdog",
                    });
                }
                if self.cfg.record_series {
                    // FeedbackArrive cannot log while blind, so
                    // the decay is recorded here.
                    self.series
                        .push("target_bps", now, self.encoder.target_bps());
                }
            }
            let next = now + self.cfg.feedback_interval;
            if next <= self.capture_end {
                sink.push(next, Event::WatchdogTick);
            }
        }
    }

    /// Releases due packets from the pacer onto the link, recording
    /// them in the RTX history when retransmission is enabled, and
    /// keeps exactly one `PacerTick` outstanding for the next release.
    fn release_pacer(&mut self, sink: &mut impl EventSink, now: Time) {
        let mut scratch = mem::take(&mut self.release_scratch);
        self.pacer.release_into(now, &mut scratch);
        for packet in scratch.drain(..) {
            if self.cfg.enable_rtx {
                self.rtx_buffer.store(&packet, now);
            }
            self.send_forward(sink, packet, now);
        }
        self.release_scratch = scratch;
        if !self.pacer_tick_pending {
            if let Some(next) = self.pacer.next_release_time() {
                self.pacer_tick_pending = true;
                sink.push(next.max(now), Event::PacerTick);
            }
        }
    }

    /// Sends one packet over the link, routing a delivered packet
    /// through the per-packet chaos stage (which may drop it, jitter
    /// its arrival past FIFO order, or inject a duplicate) and
    /// recording the send for conservation.
    fn send_forward(&mut self, sink: &mut impl EventSink, packet: Packet, now: Time) {
        self.acct.sent += 1;
        self.obs.record(now, || ObsEvent::PacketSent {
            seq: packet.seq,
            size_bytes: packet.size_bytes,
        });
        match self.link.send(&packet, now) {
            Delivery::At(arrival) => match self.fwd_chaos.as_mut() {
                Some(ch) => {
                    let fate = ch.transit(now, arrival);
                    if let Some(at) = fate.duplicate {
                        sink.push(at, Event::Arrival(packet));
                    }
                    match fate.arrival {
                        Some(at) => sink.push(at, Event::Arrival(packet)),
                        None => self.obs.record(now, || ObsEvent::PacketDropped {
                            seq: packet.seq,
                            reason: "chaos",
                        }),
                    }
                }
                None => sink.push(arrival, Event::Arrival(packet)),
            },
            Delivery::QueueDrop => self.obs.record(now, || ObsEvent::PacketDropped {
                seq: packet.seq,
                reason: "queue",
            }),
            Delivery::Lost => self.obs.record(now, || ObsEvent::PacketDropped {
                seq: packet.seq,
                reason: "loss",
            }),
        }
    }

    /// End-of-run checks and result assembly: conservation, the display
    /// post-pass, chaos-conditioned invariants, finite-metrics sweep.
    fn finish(mut self) -> SessionResult {
        let events_processed = self.popped;
        let chaos_lost = self.fwd_chaos.as_ref().map(|c| c.lost()).unwrap_or(0);
        let chaos_duplicates = self.fwd_chaos.as_ref().map(|c| c.duplicated()).unwrap_or(0);
        let expected = self.acct.arrivals
            + self.acct.inflight
            + self.link.queue_drops()
            + self.link.random_losses()
            + chaos_lost;
        self.checker.check(
            Invariant::Conservation,
            self.acct.sent + chaos_duplicates == expected,
            || {
                format!(
                    "sent {} + chaos duplicates {} != arrivals {} + in-flight {} \
                     + queue drops {} + random losses {} + chaos losses {}",
                    self.acct.sent,
                    chaos_duplicates,
                    self.acct.arrivals,
                    self.acct.inflight,
                    self.link.queue_drops(),
                    self.link.random_losses(),
                    chaos_lost
                )
            },
        );
        let last_event_at = self.last_event_at;
        self.note_violations(last_event_at);

        // --- display post-pass --------------------------------------------
        let mut decoder = Decoder::new();
        let mut recorder = LatencyRecorder::with_capacity(self.sent.len());
        let mut frames_skipped = 0u64;
        // First capture instant at/after the last fault cleared where the
        // reference chain was healthy (freeze-termination invariant).
        let mut chain_ok_after_clear: Option<Time> = None;
        for (idx, sf) in self.sent.iter().enumerate() {
            let idx = idx as u64;
            match sf {
                SentFrame::Skipped { pts, temporal } => {
                    frames_skipped += 1;
                    // Sender-side skips freeze one slot but do not break the
                    // reference chain (the encoder references the last
                    // *encoded* frame, which the receiver has).
                    let outcome = decoder.feed_sender_skip(*temporal);
                    recorder.push(FrameRecord {
                        pts: *pts,
                        outcome: FrameOutcomeKind::Frozen,
                        latency: None,
                        ssim: outcome.displayed_ssim(),
                        psnr_db: None,
                    });
                }
                SentFrame::Encoded { frame, temporal } => {
                    let complete_at = self.completed.get(idx);
                    let latency =
                        complete_at.map(|c| (c + DECODE_RENDER_DELAY).saturating_since(frame.pts));
                    let late = latency
                        .map(|l| l > self.cfg.max_playout_delay)
                        .unwrap_or(false);
                    let outcome = if late {
                        // Blew the playout deadline: decoded for reference,
                        // displayed stale.
                        let staleness =
                            late_staleness(latency, self.cfg.fps, frame.pts, &mut self.checker);
                        decoder.feed_late(frame, staleness, *temporal)
                    } else if complete_at.is_none() && frame.temporal_layer == 1 {
                        // A lost enhancement-layer frame: nothing references
                        // it, so the display freezes one slot but the chain
                        // survives — exactly like a sender-side skip.
                        decoder.feed_sender_skip(*temporal)
                    } else {
                        decoder.feed(frame.as_opt(complete_at), true, *temporal)
                    };
                    if outcome.is_displayed() {
                        recorder.push(FrameRecord {
                            pts: frame.pts,
                            outcome: FrameOutcomeKind::Displayed,
                            latency,
                            ssim: outcome.displayed_ssim(),
                            psnr_db: Some(frame.psnr_db),
                        });
                    } else {
                        recorder.push(FrameRecord {
                            pts: frame.pts,
                            outcome: FrameOutcomeKind::Frozen,
                            // Late frames still carry their measured latency.
                            latency,
                            ssim: outcome.displayed_ssim(),
                            psnr_db: None,
                        });
                    }
                    if self.cfg.record_series {
                        if let Some(c) = complete_at {
                            self.series.push(
                                "frame_latency_ms",
                                frame.pts,
                                (c + DECODE_RENDER_DELAY)
                                    .saturating_since(frame.pts)
                                    .as_millis_f64(),
                            );
                        }
                    }
                }
            }
            if chain_ok_after_clear.is_none() {
                if let Some(clear) = self.chaos_clear {
                    let pts = match sf {
                        SentFrame::Skipped { pts, .. } => *pts,
                        SentFrame::Encoded { frame, .. } => frame.pts,
                    };
                    if pts >= clear && !decoder.chain_broken() {
                        chain_ok_after_clear = Some(pts);
                    }
                }
            }
        }

        // --- chaos-conditioned invariants ---------------------------------
        // Freeze termination: once the last fault clears, the PLI → keyframe
        // path must repair the reference chain within a bound (checkable
        // only if capture extends past the bound).
        if let Some(clear) = self.chaos_clear {
            let bound_end = clear + FREEZE_TERMINATION_BOUND;
            if bound_end <= self.capture_end {
                let repaired = chain_ok_after_clear.is_some_and(|t| t <= bound_end);
                self.checker
                    .check(Invariant::FreezeTermination, repaired, || {
                        format!(
                            "reference chain not repaired within {FREEZE_TERMINATION_BOUND} \
                         of the last fault clearing at {clear} (first healthy capture: {:?})",
                            chain_ok_after_clear
                        )
                    });
            }
        }
        // Rate recovery: the encoder target must climb back to a fraction of
        // the available rate within the configured bound after the faults.
        if let (Some(clear), Some(deadline)) = (self.chaos_clear, self.recovery_deadline) {
            if deadline <= self.capture_end {
                let mut capacity_floor = self.cfg.start_rate_bps;
                let mut t = deadline;
                while t <= self.capture_end {
                    capacity_floor = capacity_floor.min(self.link.trace().rate_bps(t));
                    t += RECOVERY_CAPACITY_PROBE;
                }
                let goal = self.chaos_bounds.recovery_fraction * capacity_floor;
                let max_target_after_deadline = self.max_target_after_deadline;
                self.checker.check(
                    Invariant::RateRecovery,
                    max_target_after_deadline >= goal,
                    || {
                        format!(
                            "target peaked at {max_target_after_deadline:.0} bps after {deadline} \
                             (last fault cleared {clear}); needed {goal:.0} bps"
                        )
                    },
                );
            }
        }
        // Finite metrics: nothing non-finite may reach the recorder or the
        // recorded series.
        if let Some(r) = recorder.records().iter().find(|r| !r.is_finite()) {
            self.checker.violate(
                Invariant::FiniteMetrics,
                format!("non-finite frame record at pts {}", r.pts),
            );
        }
        'series: for (name, s) in self.series.iter() {
            for &(at, v) in s.points() {
                if !v.is_finite() {
                    self.checker.violate(
                        Invariant::FiniteMetrics,
                        format!("series {name} holds non-finite value {v} at {at}"),
                    );
                    break 'series;
                }
            }
        }
        // Post-pass invariants (freeze termination, rate recovery, finite
        // metrics) are stamped at the last event-loop instant: they are
        // end-of-run verdicts, not point-in-time observations.
        self.note_violations(last_event_at);

        SessionResult {
            recorder,
            series: self.series,
            frames_captured: self.sent.len() as u64,
            frames_skipped,
            frames_encoded: self.frames_encoded,
            events_processed,
            packets_delivered: self.link.delivered(),
            queue_drops: self.link.queue_drops(),
            random_losses: self.link.random_losses(),
            drops_handled: self.controller.map(|c| c.drops_handled()).unwrap_or(0),
            retransmissions: self.rtx_buffer.retransmissions(),
            fec_recovered: self.fec_decoder.recovered(),
            fec_parity_sent: self.fec_encoder.map(|f| f.parity_sent()).unwrap_or(0),
            audio_latencies: self.audio_latencies,
            nacks_sent: self.nack_gen.nacks_sent(),
            vbv_underflows: self.encoder.vbv_underflows(),
            reverse_lost: self.reverse.lost() + self.reverse.blackout_dropped(),
            reverse_duplicates: self.reverse.duplicated(),
            reports_discarded: self.reports_discarded,
            rejected_reports: self.validator.rejected(),
            rejected_by_reason: self.validator.by_reason(),
            feedback_corrupted: self.corruptor.as_ref().map(|c| c.corrupted()).unwrap_or(0),
            plis_suppressed: self
                .corruptor
                .as_ref()
                .map(|c| c.plis_suppressed())
                .unwrap_or(0),
            watchdog_timeouts: self.watchdog.as_ref().map(|wd| wd.timeouts()).unwrap_or(0),
            watchdog_episodes: self.watchdog.as_ref().map(|wd| wd.episodes()).unwrap_or(0),
            plis_sent: self.pli.sent(),
            chaos_lost,
            chaos_duplicates,
            chain_breaks: decoder.chain_breaks(),
            violations: self.checker.into_violations(),
            cancelled: self.cancelled,
            obs: self.obs,
        }
    }
}

/// Forward-path accounting for the conservation invariant.
#[derive(Debug, Default)]
struct ForwardAcct {
    /// Packets handed to the link (`Link::send` calls).
    sent: u64,
    /// Arrival events the loop processed.
    arrivals: u64,
    /// Arrival events still queued when the session ended.
    inflight: u64,
}

/// One frame interval at the session's frame rate.
fn frame_interval(fps: u32) -> Dur {
    Dur::micros(1_000_000 / fps as u64)
}

/// Helper: a displayed frame needs both its metadata and a completion.
trait AsOpt {
    fn as_opt(&self, complete_at: Option<Time>) -> Option<&EncodedFrame>;
}

impl AsOpt for EncodedFrame {
    fn as_opt(&self, complete_at: Option<Time>) -> Option<&EncodedFrame> {
        complete_at.map(|_| self)
    }
}

// Re-export the raw-frame type for doc examples.
pub use ravel_video::RawFrame as _RawFrame;
const _: () = {
    // Compile-time sanity: RawFrame stays in the public dependency graph.
    fn _assert(_: RawFrame) {}
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::CcKind;
    use ravel_trace::{ConstantTrace, StepTrace};

    fn short_cfg(scheme: Scheme) -> SessionConfig {
        let mut cfg = SessionConfig::default_with(scheme);
        cfg.duration = Dur::secs(20);
        cfg
    }

    #[test]
    fn steady_link_delivers_everything_promptly() {
        let cfg = short_cfg(Scheme::baseline());
        let result = run_session(ConstantTrace::new(4.5e6), cfg);
        let s = result.recorder.summarize_all();
        // 20 s at 33.333 ms per frame -> 601 captures (frame 600 lands
        // at 19.9998 s, inside the window).
        assert_eq!(result.frames_captured, 601);
        assert!(s.freeze_ratio() < 0.02, "freezes {}", s.freeze_ratio());
        // ~40 ms propagation+serialization+encode: well under 150 ms.
        assert!(
            s.mean_latency_ms < 150.0,
            "steady latency {}",
            s.mean_latency_ms
        );
        assert!(s.mean_ssim > 0.9, "steady ssim {}", s.mean_ssim);
        assert_eq!(result.drops_handled, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = short_cfg(Scheme::adaptive());
        let trace = || StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10));
        let a = run_session(trace(), cfg);
        let b = run_session(trace(), cfg);
        assert_eq!(a.recorder.records(), b.recorder.records());
        assert_eq!(a.frames_skipped, b.frames_skipped);
    }

    #[test]
    fn drop_spikes_baseline_latency() {
        let cfg = short_cfg(Scheme::baseline());
        let result = run_session(StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10)), cfg);
        // Skip the first seconds: GCC's startup probe transient.
        let before = result
            .recorder
            .summarize(Time::from_secs(5), Time::from_secs(10));
        let after = result
            .recorder
            .summarize(Time::from_secs(10), Time::from_secs(16));
        assert!(
            after.p95_latency_ms > before.p95_latency_ms * 2.0,
            "no latency spike: before p95 {} after p95 {}",
            before.p95_latency_ms,
            after.p95_latency_ms
        );
    }

    #[test]
    fn adaptive_cuts_post_drop_latency() {
        let mk = || StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10));
        let base = run_session(mk(), short_cfg(Scheme::baseline()));
        let adap = run_session(mk(), short_cfg(Scheme::adaptive()));
        let w = (Time::from_secs(10), Time::from_secs(18));
        let b = base.recorder.summarize(w.0, w.1);
        let a = adap.recorder.summarize(w.0, w.1);
        assert!(adap.drops_handled >= 1, "adaptive never triggered");
        assert!(
            a.mean_latency_ms < b.mean_latency_ms,
            "adaptive {} vs baseline {}",
            a.mean_latency_ms,
            b.mean_latency_ms
        );
    }

    #[test]
    fn session_counters_consistent() {
        let cfg = short_cfg(Scheme::adaptive());
        let result = run_session(StepTrace::sudden_drop(4e6, 0.5e6, Time::from_secs(10)), cfg);
        assert_eq!(
            result.recorder.records().len() as u64,
            result.frames_captured
        );
        assert!(result.frames_skipped <= result.frames_captured);
        assert_eq!(
            result.frames_captured,
            result.frames_skipped + result.frames_encoded
        );
        // Every capture, packet arrival and feedback flush is an event.
        assert!(result.events_processed > result.frames_captured);
        assert!(result.packets_delivered > 0);
    }

    /// Compares two session results field-by-field on everything the
    /// harness report derives from (LatencyRecorder/SeriesSet don't
    /// implement PartialEq wholesale).
    fn assert_results_identical(a: &SessionResult, b: &SessionResult) {
        assert_eq!(a.recorder.records(), b.recorder.records());
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.frames_captured, b.frames_captured);
        assert_eq!(a.frames_encoded, b.frames_encoded);
        assert_eq!(a.frames_skipped, b.frames_skipped);
        assert_eq!(a.packets_delivered, b.packets_delivered);
        assert_eq!(a.drops_handled, b.drops_handled);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.cancelled, b.cancelled);
    }

    #[test]
    fn pooled_workspace_reuses_boxes_and_leaks_nothing() {
        // A known cell: baseline scheme, 4 s on a constant 3 Mbps link —
        // the same fixture the harness quarantine tests use.
        let mut cfg = SessionConfig::default_with(Scheme::baseline());
        cfg.duration = Dur::secs(4);
        let mut ws = KernelWorkspace::new();
        let first =
            run_sessions_pooled(vec![(ConstantTrace::new(3e6), cfg)], ObsMode::Off, &mut ws);
        let after_first = ws.arena_stats();
        // Every EncodeDone box must come back: a leak here would mean a
        // payload escaped the recycle sites in `step`.
        assert_eq!(after_first.outstanding, 0, "payload boxes leaked");
        // The capture→encode pipeline keeps at most a couple of encoded
        // frames in flight at once; the observed peak for this cell is
        // exactly one box live at a time.
        assert_eq!(after_first.high_water, 1);
        // Same cell again through the same workspace: the free list is
        // warm, so every payload allocation is now served from it.
        let second =
            run_sessions_pooled(vec![(ConstantTrace::new(3e6), cfg)], ObsMode::Off, &mut ws);
        let after_second = ws.arena_stats();
        assert_eq!(after_second.outstanding, 0);
        assert_eq!(after_second.high_water, 1);
        assert_eq!(
            after_second.allocs_avoided - after_first.allocs_avoided,
            second[0].frames_encoded,
            "second batch should alloc entirely from the free list"
        );
        assert_results_identical(&first[0], &second[0]);
    }

    // The arena only changes where payload boxes come from — pooled
    // populations must match the allocating oracle result-for-result
    // across seeds, drop depths, and population sizes.
    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig {
            cases: 24,
            ..proptest::ProptestConfig::default()
        })]
        #[test]
        fn pooled_kernel_matches_allocating_kernel(
            seed in 0u64..1_000,
            after_kbps in 200u64..2_000,
            n in 1usize..4,
        ) {
            let sessions = || -> Vec<(StepTrace, SessionConfig)> {
                (0..n)
                    .map(|i| {
                        let scheme = if i % 2 == 0 {
                            Scheme::baseline()
                        } else {
                            Scheme::adaptive()
                        };
                        let mut cfg = SessionConfig::default_with(scheme);
                        cfg.duration = Dur::secs(4);
                        cfg.seed = seed + i as u64;
                        let trace = StepTrace::sudden_drop(
                            4e6,
                            after_kbps as f64 * 1e3,
                            Time::from_secs(2),
                        );
                        (trace, cfg)
                    })
                    .collect()
            };
            let mut ws = KernelWorkspace::new();
            let pooled = run_sessions_pooled(sessions(), ObsMode::Off, &mut ws);
            let allocating = run_sessions_obs(sessions(), ObsMode::Off);
            proptest::prop_assert_eq!(pooled.len(), allocating.len());
            for (a, b) in pooled.iter().zip(&allocating) {
                assert_results_identical(a, b);
            }
            proptest::prop_assert_eq!(ws.arena_stats().outstanding, 0);
        }
    }

    #[test]
    fn series_recorded_when_enabled() {
        let mut cfg = short_cfg(Scheme::adaptive());
        cfg.record_series = true;
        let result = run_session(StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10)), cfg);
        for name in [
            "target_bps",
            "gcc_target_bps",
            "capacity_bps",
            "link_queue_ms",
            "qp",
            "send_rate_bps",
            "frame_latency_ms",
        ] {
            assert!(
                result
                    .series
                    .get(name)
                    .map(|s| !s.is_empty())
                    .unwrap_or(false),
                "series {name} missing"
            );
        }
    }

    #[test]
    fn audio_flow_records_latencies() {
        let mut cfg = short_cfg(Scheme::adaptive());
        cfg.enable_audio = true;
        let result = run_session(ConstantTrace::new(4.5e6), cfg);
        // 20 s at one packet per 20 ms; a handful may drop-tail during
        // the GCC startup transient.
        assert!(
            result.audio_latencies.len() > 900,
            "audio packets missing: {}",
            result.audio_latencies.len()
        );
        for &(_, l) in &result.audio_latencies {
            assert!(l >= Dur::millis(20), "audio beat propagation: {l}");
        }
        // After GCC settles, audio rides a near-empty queue.
        let settled: Vec<Dur> = result
            .audio_latencies
            .iter()
            .filter(|&&(t, _)| t >= Time::from_secs(8))
            .map(|&(_, l)| l)
            .collect();
        assert!(!settled.is_empty());
        let mean_ms = settled.iter().map(|l| l.as_millis_f64()).sum::<f64>() / settled.len() as f64;
        assert!(mean_ms < 60.0, "settled audio latency {mean_ms:.1}ms");
    }

    #[test]
    fn audio_disabled_records_nothing() {
        let cfg = short_cfg(Scheme::baseline());
        let result = run_session(ConstantTrace::new(4e6), cfg);
        assert!(result.audio_latencies.is_empty());
    }

    #[test]
    fn audio_coexists_with_video_through_a_drop() {
        // With an audio flow present, GCC sees a continuous fine-grained
        // arrival signal, so the post-drop damage concentrates in the
        // *video pacer* (which audio bypasses): audio survives for both
        // schemes, and the adaptive controller must still fix the video.
        let mk = || StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10));
        let run_one = |scheme| {
            let mut cfg = short_cfg(scheme);
            cfg.enable_audio = true;
            run_session(mk(), cfg)
        };
        let base = run_one(Scheme::baseline());
        let adpt = run_one(Scheme::adaptive());
        let window = (Time::from_secs(10), Time::from_secs(18));
        for (name, r) in [("baseline", &base), ("adaptive", &adpt)] {
            let delivered = r
                .audio_latencies
                .iter()
                .filter(|&&(t, _)| t >= window.0 && t < window.1)
                .count();
            assert!(
                delivered > 350,
                "{name}: audio delivery collapsed: {delivered} of ~400"
            );
        }
        let bw = base.recorder.summarize(window.0, window.1);
        let aw = adpt.recorder.summarize(window.0, window.1);
        assert!(
            aw.mean_latency_ms < bw.mean_latency_ms,
            "video not improved with audio present: {} vs {}",
            aw.mean_latency_ms,
            bw.mean_latency_ms
        );
    }

    #[test]
    fn fec_recovers_losses_without_rtt() {
        let mut with_fec = short_cfg(Scheme::adaptive());
        with_fec.link.random_loss = 0.03;
        with_fec.enable_fec = true;
        with_fec.enable_rtx = false;
        let mut without = with_fec;
        without.enable_fec = false;
        let f = run_session(ConstantTrace::new(4e6), with_fec);
        let n = run_session(ConstantTrace::new(4e6), without);
        assert!(f.fec_parity_sent > 0, "no parity sent");
        assert!(f.fec_recovered > 0, "nothing recovered at 3% loss");
        let fs = f.recorder.summarize_all();
        let ns = n.recorder.summarize_all();
        assert!(
            fs.freeze_ratio() < ns.freeze_ratio(),
            "FEC did not reduce freezes: {} vs {}",
            fs.freeze_ratio(),
            ns.freeze_ratio()
        );
    }

    #[test]
    fn fec_disabled_sends_no_parity() {
        let cfg = short_cfg(Scheme::baseline());
        let result = run_session(ConstantTrace::new(4e6), cfg);
        assert_eq!(result.fec_parity_sent, 0);
        assert_eq!(result.fec_recovered, 0);
    }

    #[test]
    fn series_absent_when_disabled() {
        let cfg = short_cfg(Scheme::baseline());
        let result = run_session(ConstantTrace::new(4e6), cfg);
        assert!(result.series.names().is_empty());
    }

    #[test]
    fn clean_runs_satisfy_all_invariants() {
        for scheme in [Scheme::baseline(), Scheme::adaptive()] {
            let mut cfg = short_cfg(scheme);
            cfg.enable_audio = true;
            cfg.record_series = true;
            let result = run_session(StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10)), cfg);
            assert!(
                result.violations.is_empty(),
                "{}: {:?}",
                scheme.name(),
                result.violations
            );
            assert_eq!(result.chaos_lost, 0);
            assert_eq!(result.chaos_duplicates, 0);
        }
    }

    #[test]
    fn second_blackout_redegrades_and_rate_still_recovers() {
        // The E17 control-plane regime, twice over: the reverse path
        // blacks out at 8 s and again at 18 s with the watchdog armed.
        // Each blackout must be its own blind episode (Degraded
        // re-entry, not a stale phase), and after the *second* recovery
        // the target must climb back toward the unchanged 4 Mbps
        // capacity — the rate-recovery contract holds across repeats.
        let mut cfg = short_cfg(Scheme::adaptive());
        cfg.duration = Dur::secs(40);
        cfg.record_series = true;
        cfg.reverse_path = ReversePathConfig::with_loss(0.0)
            .add_blackout(Time::from_secs(8), Time::from_secs(10))
            .add_blackout(Time::from_secs(18), Time::from_secs(20));
        cfg.watchdog = Some(WatchdogConfig::for_timing(
            cfg.feedback_interval,
            cfg.reverse_delay * 2,
        ));
        let result = run_session(ConstantTrace::new(4e6), cfg);
        assert!(result.violations.is_empty(), "{:?}", result.violations);
        assert_eq!(result.watchdog_episodes, 2, "one episode per blackout");
        assert!(
            result.watchdog_timeouts >= 4,
            "2 s blackouts should each fire several backoff steps, got {}",
            result.watchdog_timeouts
        );
        let tgt = result.series.get("target_bps").expect("series recorded");
        let blind = tgt.mean_in(Time::from_secs(9), Time::from_secs(10));
        let recovered = tgt.mean_in(Time::from_secs(34), Time::from_secs(40));
        assert!(
            blind < 1e6,
            "watchdog never cut the target while blind: {blind:.0} bps"
        );
        assert!(
            recovered >= 0.55 * 4e6,
            "target did not recover after the second blackout: {recovered:.0} bps"
        );
    }

    #[test]
    fn chaos_none_equals_empty_schedule_byte_for_byte() {
        // The passthrough contract: an explicitly empty schedule must be
        // indistinguishable from no chaos at all.
        let cfg = short_cfg(Scheme::adaptive());
        let mk = || StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10));
        let plain = run_session(mk(), cfg);
        let empty = run_session_chaos(mk(), cfg, Some(ChaosSchedule::empty()));
        assert_eq!(plain.recorder.records(), empty.recorder.records());
        assert_eq!(plain.events_processed, empty.events_processed);
        assert_eq!(plain.packets_delivered, empty.packets_delivered);
    }

    #[test]
    fn chaos_sessions_hold_invariants_and_are_deterministic() {
        for seed in [1u64, 7, 23] {
            for intensity in [0.3, 1.0] {
                let mut cfg = short_cfg(Scheme::adaptive());
                cfg.duration = Dur::secs(30);
                cfg.seed = seed;
                cfg.chaos = Some(ChaosSpec::new(seed, intensity));
                let a = run_session(ConstantTrace::new(4e6), cfg);
                assert!(
                    a.violations.is_empty(),
                    "seed {seed} intensity {intensity}: {:?}",
                    a.violations
                );
                let b = run_session(ConstantTrace::new(4e6), cfg);
                assert_eq!(a.recorder.records(), b.recorder.records());
                assert_eq!(a.chaos_lost, b.chaos_lost);
                assert_eq!(a.chaos_duplicates, b.chaos_duplicates);
            }
        }
    }

    #[test]
    fn corrupt_none_equals_empty_schedule_byte_for_byte() {
        // Same passthrough contract as chaos: an explicitly empty
        // corruption schedule must be indistinguishable from none.
        let cfg = short_cfg(Scheme::adaptive());
        let mk = || StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10));
        let plain = run_session(mk(), cfg);
        let empty = run_session_corrupt(mk(), cfg, Some(ravel_net::CorruptSchedule::empty()));
        assert_eq!(plain.recorder.records(), empty.recorder.records());
        assert_eq!(plain.events_processed, empty.events_processed);
        assert_eq!(plain.packets_delivered, empty.packets_delivered);
        assert_eq!(plain.rejected_reports, 0);
        assert_eq!(empty.rejected_reports, 0);
        assert_eq!(empty.feedback_corrupted, 0);
        assert!(empty.rejected_by_reason.is_empty());
    }

    #[test]
    fn pure_corruption_trips_the_watchdog_like_silence() {
        // The blind-time regression (satellite of ISSUE 9): reports that
        // ARRIVE but are rejected must not reset the feedback deadline.
        // Zero-loss, zero-blackout reverse path; one explicit corruption
        // segment at rate 1.0 over [8 s, 12 s) — every report crossing
        // it is truncated and rejected, so the watchdog must see a blind
        // episode even though a report lands every interval.
        use ravel_net::{CorruptKind, CorruptSchedule, CorruptSegment};
        let mut cfg = short_cfg(Scheme::adaptive());
        cfg.duration = Dur::secs(40);
        cfg.record_series = true;
        cfg.reverse_path = ReversePathConfig::with_loss(0.0);
        cfg.watchdog = Some(WatchdogConfig::for_timing(
            cfg.feedback_interval,
            cfg.reverse_delay * 2,
        ));
        let schedule = CorruptSchedule::from_segments(vec![CorruptSegment {
            from: Time::from_secs(8),
            until: Time::from_secs(12),
            kind: CorruptKind::Truncate,
            rate: 1.0,
        }]);
        let result = run_session_corrupt(ConstantTrace::new(4e6), cfg, Some(schedule.clone()));
        assert!(result.violations.is_empty(), "{:?}", result.violations);
        assert_eq!(result.reverse_lost, 0, "reverse path must be clean");
        assert!(result.feedback_corrupted > 0);
        assert!(
            result.rejected_reports > 0,
            "every report in the segment should be rejected"
        );
        assert_eq!(
            result.rejected_by_reason,
            vec![("non-contiguous-seq", result.rejected_reports)]
        );
        // The exact episode count is a regression pin. It is > 1 because
        // the blind window self-oscillates: once the watchdog cuts the
        // target, reports shrink below the 3 packets truncation needs, an
        // honest report slips through and re-arms the deadline, the rate
        // climbs, and truncation bites again. Any feedback-path change
        // that shifts this number deserves scrutiny.
        assert_eq!(
            result.watchdog_episodes, 6,
            "pure corruption must trip repeated blind episodes"
        );
        assert!(
            result.watchdog_timeouts >= result.watchdog_episodes,
            "each blind episode starts with at least one timeout"
        );
        // While blind, the watchdog cuts the target; afterwards the
        // next honest report must be accepted (the freshness gate did
        // not advance on rejected seqs) and the rate must recover.
        let tgt = result.series.get("target_bps").expect("series recorded");
        let blind = tgt.mean_in(Time::from_secs(8), Time::from_secs(12));
        let recovered = tgt.mean_in(Time::from_secs(34), Time::from_secs(40));
        assert!(
            blind < 0.5 * recovered,
            "watchdog never cut while garbage flowed: blind {blind:.0} vs recovered {recovered:.0}"
        );
        assert!(
            recovered >= 0.55 * 4e6,
            "no recovery after corruption: {recovered:.0}"
        );
        // The obs layer sees the same rejections the validator counted.
        let observed = run_session_corrupt_obs(
            ConstantTrace::new(4e6),
            cfg,
            Some(schedule),
            ObsMode::Counters,
        );
        assert_eq!(
            observed.obs.counters.feedback_rejected,
            observed.rejected_reports
        );
        assert_eq!(observed.rejected_reports, result.rejected_reports);
        assert_eq!(observed.recorder.records(), result.recorder.records());
    }

    #[test]
    fn corrupt_sessions_hold_invariants_and_are_deterministic() {
        let mut total_rejected = 0u64;
        for seed in [1u64, 7, 23] {
            for intensity in [0.3, 1.0] {
                let mut cfg = short_cfg(Scheme::adaptive());
                cfg.duration = Dur::secs(30);
                cfg.seed = seed;
                cfg.corrupt = Some(ravel_net::CorruptSpec::new(seed, intensity));
                cfg.watchdog = Some(WatchdogConfig::for_timing(
                    cfg.feedback_interval,
                    cfg.reverse_delay * 2,
                ));
                let a = run_session(ConstantTrace::new(4e6), cfg);
                assert!(
                    a.violations.is_empty(),
                    "seed {seed} intensity {intensity}: {:?}",
                    a.violations
                );
                assert!(a.feedback_corrupted > 0, "schedule never fired");
                total_rejected += a.rejected_reports;
                let b = run_session(ConstantTrace::new(4e6), cfg);
                assert_eq!(a.recorder.records(), b.recorder.records());
                assert_eq!(a.rejected_reports, b.rejected_reports);
                assert_eq!(a.rejected_by_reason, b.rejected_by_reason);
                assert_eq!(a.feedback_corrupted, b.feedback_corrupted);
                assert_eq!(a.events_processed, b.events_processed);
            }
        }
        // Individual schedules can draw only stale-gate-absorbed kinds;
        // across the grid the validator must have real work.
        assert!(total_rejected > 0);
    }

    #[test]
    fn obs_capture_does_not_perturb_the_session() {
        // Recording a full timeline must be a pure observer: all
        // measurements stay byte-identical to an unobserved run.
        let mut cfg = short_cfg(Scheme::adaptive());
        cfg.chaos = Some(ChaosSpec::new(3, 0.5));
        let mk = || StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10));
        let off = run_session(mk(), cfg);
        let full = run_session_obs(mk(), cfg, ObsMode::Full);
        assert_eq!(off.recorder.records(), full.recorder.records());
        assert_eq!(off.events_processed, full.events_processed);
        assert_eq!(off.packets_delivered, full.packets_delivered);
        assert_eq!(off.violations, full.violations);
        // And the observed run actually saw the session.
        assert_eq!(full.obs.counters.frames_captured, full.frames_captured);
        assert_eq!(full.obs.counters.frames_encoded, full.frames_encoded);
        // Delivered events include chaos duplicates and exclude packets
        // still in flight at session end, so compare loosely.
        assert!(full.obs.counters.packets_delivered > 0);
        assert!(
            full.obs.counters.packets_sent + full.chaos_duplicates
                >= full.obs.counters.packets_delivered
        );
        assert!(full.obs.counters.chaos_segments > 0);
        assert!(full.obs.counters.target_changes > 0);
        assert!(full.obs.recorded() > 0);
        // Off mode records nothing at all.
        assert_eq!(off.obs.recorded(), 0);
        assert_eq!(off.obs.counters.total(), 0);
        // Counters mode tallies identically to full capture.
        let counters = run_session_obs(mk(), cfg, ObsMode::Counters);
        assert_eq!(counters.obs.counters, full.obs.counters);
        assert!(counters.obs.events().is_empty());
        // The timeline digest is deterministic across reruns.
        let full2 = run_session_obs(mk(), cfg, ObsMode::Full);
        assert_eq!(full.obs.digest("cell"), full2.obs.digest("cell"));
    }

    #[test]
    fn event_budget_trips_runaway_termination() {
        let cfg = short_cfg(Scheme::baseline());
        let mut guard = SessionGuard::for_config(&cfg);
        // Far below what a healthy 20 s session needs: the guard must
        // cut the session off and flag it, not hang or panic.
        guard.max_events = 500;
        let result = run_session_guarded(ConstantTrace::new(4e6), cfg, None, ObsMode::Off, guard);
        assert_eq!(result.violations.len(), 1, "{:?}", result.violations);
        assert_eq!(
            result.violations[0].invariant,
            Invariant::RunawayTermination
        );
        assert!(result.violations[0].detail.contains("event budget"));
        assert!(!result.cancelled);
    }

    #[test]
    fn sim_time_horizon_trips_runaway_termination() {
        let cfg = short_cfg(Scheme::baseline());
        let mut guard = SessionGuard::for_config(&cfg);
        guard.horizon = Time::from_secs(5);
        let result = run_session_guarded(ConstantTrace::new(4e6), cfg, None, ObsMode::Off, guard);
        assert!(
            result
                .violations
                .iter()
                .any(|v| v.invariant == Invariant::RunawayTermination
                    && v.detail.contains("horizon")),
            "{:?}",
            result.violations
        );
        // The session stopped right past the horizon.
        assert!(result.frames_captured < 200);
    }

    #[test]
    fn runaway_guard_is_deterministic() {
        let mut cfg = short_cfg(Scheme::adaptive());
        cfg.inject = InjectedFault::Runaway {
            at: Time::from_secs(2),
        };
        let a = run_session(ConstantTrace::new(4e6), cfg);
        let b = run_session(ConstantTrace::new(4e6), cfg);
        assert!(
            a.violations
                .iter()
                .any(|v| v.invariant == Invariant::RunawayTermination),
            "{:?}",
            a.violations
        );
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.recorder.records(), b.recorder.records());
    }

    #[test]
    fn injected_panic_fires_at_the_configured_instant() {
        let mut cfg = short_cfg(Scheme::baseline());
        cfg.inject = InjectedFault::Panic {
            at: Time::from_secs(2),
        };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_session(ConstantTrace::new(4e6), cfg)
        }));
        let payload = caught.expect_err("injected panic did not fire");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic payload is a formatted string");
        assert_eq!(msg, "injected panic fixture at 2.000000");
    }

    #[test]
    fn cancellation_flag_truncates_the_session() {
        let cfg = short_cfg(Scheme::baseline());
        let flag = Arc::new(AtomicBool::new(true));
        let guard = SessionGuard::for_config(&cfg).with_cancel(flag);
        let result = run_session_guarded(ConstantTrace::new(4e6), cfg, None, ObsMode::Off, guard);
        assert!(result.cancelled);
        assert!(result.violations.is_empty(), "{:?}", result.violations);
        assert!(result.events_processed <= CANCEL_POLL_EVERY_EVENTS);
    }

    #[test]
    fn default_guard_never_fires_on_healthy_sessions() {
        let mut cfg = short_cfg(Scheme::adaptive());
        cfg.enable_audio = true;
        cfg.chaos = Some(ChaosSpec::new(3, 1.0));
        cfg.duration = Dur::secs(30);
        let result = run_session(ConstantTrace::new(4e6), cfg);
        assert!(result.violations.is_empty(), "{:?}", result.violations);
        assert!(!result.cancelled);
        let budget = SessionGuard::for_config(&cfg).max_events;
        assert!(
            result.events_processed * 10 < budget,
            "headroom too thin: {} of {budget}",
            result.events_processed
        );
    }

    #[test]
    fn impossible_recovery_bound_is_caught_not_panicked() {
        // A deliberately broken invariant: no controller can reach 300%
        // of capacity, so the rate-recovery check must flag (and only
        // flag — the run completes normally).
        let mut cfg = short_cfg(Scheme::adaptive());
        cfg.duration = Dur::secs(30);
        let mut spec = ChaosSpec::new(5, 0.5);
        spec.recovery_fraction = 3.0;
        cfg.chaos = Some(spec);
        let result = run_session(ConstantTrace::new(4e6), cfg);
        assert!(
            result
                .violations
                .iter()
                .any(|v| v.invariant == Invariant::RateRecovery),
            "expected a rate-recovery violation: {:?}",
            result.violations
        );
        assert_eq!(result.frames_captured, 901);
    }

    fn test_packet(seq: u64) -> Packet {
        Packet {
            kind: MediaKind::Video,
            seq,
            frame_index: seq / 10,
            fragment: 0,
            num_fragments: 1,
            size_bytes: 1250,
            pts: Time::ZERO,
            send_time: Time::ZERO,
            is_keyframe: false,
        }
    }

    #[test]
    fn sent_video_window_handles_empty_and_evicts_in_order() {
        let mut w = SentVideoWindow::default();
        // Empty window: lookups are graceful, never a panic.
        assert_eq!(w.get(0), None);
        assert_eq!(w.get(u64::MAX), None);
        let total = SENT_VIDEO_WINDOW as u64 + 10;
        for seq in 0..total {
            w.insert(test_packet(seq));
        }
        // Bounded: the oldest 10 were evicted, in order.
        assert_eq!(w.packets.len(), SENT_VIDEO_WINDOW);
        for seq in 0..10 {
            assert_eq!(w.get(seq), None, "seq {seq} should be evicted");
        }
        assert_eq!(w.get(10).map(|p| p.seq), Some(10));
        assert_eq!(w.get(total - 1).map(|p| p.seq), Some(total - 1));
        // Misses inside and past the window are graceful too.
        assert_eq!(w.get(total + 100), None);
    }

    #[test]
    fn completed_frames_keep_first_completion() {
        let mut c = CompletedFrames::default();
        assert_eq!(c.get(0), None);
        c.note(3, Time::from_secs(1));
        c.note(3, Time::from_secs(2));
        assert_eq!(c.get(3), Some(Time::from_secs(1)));
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1000), None);
    }

    #[test]
    fn late_frame_without_completion_records_violation_not_panic() {
        // The desync path: a frame judged late with no completion record
        // must flag finite-metrics and display un-stale, not abort.
        let mut checker = InvariantChecker::new();
        let s = late_staleness(None, 30, Time::from_secs(1), &mut checker);
        assert_eq!(s, 0.0);
        let v = checker.into_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, Invariant::FiniteMetrics);
        assert!(
            v[0].detail.contains("no completion record"),
            "{}",
            v[0].detail
        );
        // The healthy path is the plain ratio, with nothing flagged.
        let mut checker = InvariantChecker::new();
        let s = late_staleness(Some(Dur::millis(100)), 30, Time::ZERO, &mut checker);
        assert!((s - 3.0).abs() < 0.01, "staleness {s}");
        assert!(checker.into_violations().is_empty());
    }

    #[test]
    fn pacer_ticks_stay_bounded_under_sustained_backlog() {
        // A fixed-rate sender over a link at a third of its rate keeps
        // the pacer backlogged for the whole session — the E20 soak
        // regime. With one outstanding tick at a time the event count
        // stays a few thousand per simulated second; the historical
        // storm grew it past 100k/sim-s.
        let cfg = SessionConfig {
            duration: Dur::secs(20),
            ..SessionConfig::default_with(Scheme {
                cc: CcKind::Fixed,
                adaptive: None,
            })
        };
        let result = run_session(ConstantTrace::new(1.5e6), cfg);
        assert!(result.violations.is_empty(), "{:?}", result.violations);
        let per_sim_sec = result.events_processed / 20;
        assert!(
            per_sim_sec < 20_000,
            "pacer tick storm: {} events/sim-s",
            per_sim_sec
        );
    }

    #[test]
    fn multi_session_kernel_matches_single_session_runs() {
        // Interleaving sessions over one shared queue must reproduce
        // each single-session run byte-for-byte, including guard
        // bookkeeping, violations, and obs timelines.
        let mk_cfg = |seed: u64| {
            let mut cfg = short_cfg(if seed.is_multiple_of(2) {
                Scheme::baseline()
            } else {
                Scheme::adaptive()
            });
            cfg.seed = seed;
            if seed == 3 {
                cfg.chaos = Some(ChaosSpec::new(3, 0.5));
            }
            cfg
        };
        let mk_trace = || StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10));
        let singles: Vec<SessionResult> = (1..=3)
            .map(|seed| run_session_obs(mk_trace(), mk_cfg(seed), ObsMode::Counters))
            .collect();
        let batch = run_sessions_obs(
            (1..=3).map(|seed| (mk_trace(), mk_cfg(seed))).collect(),
            ObsMode::Counters,
        );
        assert_eq!(batch.len(), 3);
        for (i, (a, b)) in singles.iter().zip(batch.iter()).enumerate() {
            assert_eq!(a.recorder.records(), b.recorder.records(), "session {i}");
            assert_eq!(a.events_processed, b.events_processed, "session {i}");
            assert_eq!(a.packets_delivered, b.packets_delivered, "session {i}");
            assert_eq!(a.frames_skipped, b.frames_skipped, "session {i}");
            assert_eq!(a.violations, b.violations, "session {i}");
            assert_eq!(a.obs.counters, b.obs.counters, "session {i}");
        }
    }
}
