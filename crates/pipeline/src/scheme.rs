//! Sender schemes: which congestion controller, and whether the
//! adaptive encoder controller is in the loop.

use ravel_cc::{
    Bbr, BbrConfig, CongestionController, FixedRate, Gcc, GccConfig, LossEma, LossEmaConfig, Nada,
    NadaConfig, NaiveAimd,
};
use ravel_core::AdaptiveConfig;

/// Which congestion controller drives the long-term target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcKind {
    /// Google Congestion Control (the realistic baseline).
    Gcc,
    /// No congestion control: fixed at the start rate.
    Fixed,
    /// Loss-only AIMD (TCP-flavoured strawman).
    NaiveAimd,
    /// RFC 8698 NADA (arena controller).
    Nada,
    /// BBR-style delivery-rate estimator (arena controller).
    Bbr,
    /// beam's loss-EMA AIMD loop (arena controller).
    LossEma,
}

impl CcKind {
    /// Instantiates the controller at `start_bps`.
    pub fn build(self, start_bps: f64) -> Box<dyn CongestionController> {
        match self {
            CcKind::Gcc => Box::new(Gcc::new(GccConfig::new(start_bps))),
            CcKind::Fixed => Box::new(FixedRate::new(start_bps)),
            CcKind::NaiveAimd => Box::new(NaiveAimd::new(start_bps, 150_000.0, 8e6)),
            CcKind::Nada => Box::new(Nada::new(NadaConfig::new(start_bps))),
            CcKind::Bbr => Box::new(Bbr::new(BbrConfig::new(start_bps))),
            CcKind::LossEma => Box::new(LossEma::new(LossEmaConfig::new(start_bps))),
        }
    }

    /// Short name for experiment tables and CLI selection.
    pub fn cc_name(self) -> &'static str {
        match self {
            CcKind::Gcc => "gcc",
            CcKind::Fixed => "fixed",
            CcKind::NaiveAimd => "naive-aimd",
            CcKind::Nada => "nada",
            CcKind::Bbr => "bbr",
            CcKind::LossEma => "loss-ema",
        }
    }

    /// `Some(name)` for the E22 arena controllers (schema ≥ 8 reports
    /// carry this as the per-cell `controller` field); `None` for the
    /// pre-arena kinds so e1–e21 report bytes are unchanged.
    pub fn arena_name(self) -> Option<&'static str> {
        match self {
            CcKind::Nada | CcKind::Bbr | CcKind::LossEma => Some(self.cc_name()),
            CcKind::Gcc | CcKind::Fixed | CcKind::NaiveAimd => None,
        }
    }
}

/// A complete sender scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scheme {
    /// The congestion controller.
    pub cc: CcKind,
    /// The adaptive encoder controller, if enabled.
    pub adaptive: Option<AdaptiveConfig>,
}

impl Scheme {
    /// The paper's baseline: GCC + slow-path encoder reconfiguration.
    pub fn baseline() -> Scheme {
        Scheme {
            cc: CcKind::Gcc,
            adaptive: None,
        }
    }

    /// The paper's system: GCC + the adaptive controller (full config).
    pub fn adaptive() -> Scheme {
        Scheme {
            cc: CcKind::Gcc,
            adaptive: Some(AdaptiveConfig::default()),
        }
    }

    /// The paper's system with a specific (e.g. ablated) config.
    pub fn adaptive_with(cfg: AdaptiveConfig) -> Scheme {
        Scheme {
            cc: CcKind::Gcc,
            adaptive: Some(cfg),
        }
    }

    /// An arbitrary controller without the adaptive encoder loop.
    pub fn cc_baseline(cc: CcKind) -> Scheme {
        Scheme { cc, adaptive: None }
    }

    /// An arbitrary controller with the full adaptive encoder loop.
    pub fn cc_adaptive(cc: CcKind) -> Scheme {
        Scheme {
            cc,
            adaptive: Some(AdaptiveConfig::default()),
        }
    }

    /// Short name for experiment tables.
    pub fn name(&self) -> String {
        let cc = self.cc.cc_name();
        if self.adaptive.is_some() {
            format!("{cc}+adaptive")
        } else {
            cc.to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every kind the scheme layer knows about.
    pub const ALL_KINDS: [CcKind; 6] = [
        CcKind::Gcc,
        CcKind::Fixed,
        CcKind::NaiveAimd,
        CcKind::Nada,
        CcKind::Bbr,
        CcKind::LossEma,
    ];

    #[test]
    fn names() {
        assert_eq!(Scheme::baseline().name(), "gcc");
        assert_eq!(Scheme::adaptive().name(), "gcc+adaptive");
        assert_eq!(Scheme::cc_baseline(CcKind::Fixed).name(), "fixed");
        assert_eq!(Scheme::cc_adaptive(CcKind::Nada).name(), "nada+adaptive");
        assert_eq!(Scheme::cc_baseline(CcKind::Bbr).name(), "bbr");
        assert_eq!(Scheme::cc_baseline(CcKind::LossEma).name(), "loss-ema");
    }

    #[test]
    fn cc_builders_start_at_requested_rate() {
        for kind in ALL_KINDS {
            let cc = kind.build(2e6);
            assert_eq!(cc.target_bps(), 2e6, "{kind:?}");
        }
    }

    #[test]
    fn cc_names_are_unique_and_match_controllers() {
        let mut seen = std::collections::BTreeSet::new();
        for kind in ALL_KINDS {
            assert!(seen.insert(kind.cc_name()), "duplicate name for {kind:?}");
            assert_eq!(kind.build(1e6).name(), kind.cc_name(), "{kind:?}");
        }
    }

    #[test]
    fn arena_names_cover_exactly_the_new_controllers() {
        let arena: Vec<_> = ALL_KINDS.iter().filter_map(|k| k.arena_name()).collect();
        assert_eq!(arena, ["nada", "bbr", "loss-ema"]);
    }
}
