//! Sender schemes: which congestion controller, and whether the
//! adaptive encoder controller is in the loop.

use ravel_cc::{CongestionController, FixedRate, Gcc, GccConfig, NaiveAimd};
use ravel_core::AdaptiveConfig;

/// Which congestion controller drives the long-term target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcKind {
    /// Google Congestion Control (the realistic baseline).
    Gcc,
    /// No congestion control: fixed at the start rate.
    Fixed,
    /// Loss-only AIMD (TCP-flavoured strawman).
    NaiveAimd,
}

impl CcKind {
    /// Instantiates the controller at `start_bps`.
    pub fn build(self, start_bps: f64) -> Box<dyn CongestionController> {
        match self {
            CcKind::Gcc => Box::new(Gcc::new(GccConfig::new(start_bps))),
            CcKind::Fixed => Box::new(FixedRate::new(start_bps)),
            CcKind::NaiveAimd => Box::new(NaiveAimd::new(start_bps, 150_000.0, 8e6)),
        }
    }
}

/// A complete sender scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scheme {
    /// The congestion controller.
    pub cc: CcKind,
    /// The adaptive encoder controller, if enabled.
    pub adaptive: Option<AdaptiveConfig>,
}

impl Scheme {
    /// The paper's baseline: GCC + slow-path encoder reconfiguration.
    pub fn baseline() -> Scheme {
        Scheme {
            cc: CcKind::Gcc,
            adaptive: None,
        }
    }

    /// The paper's system: GCC + the adaptive controller (full config).
    pub fn adaptive() -> Scheme {
        Scheme {
            cc: CcKind::Gcc,
            adaptive: Some(AdaptiveConfig::default()),
        }
    }

    /// The paper's system with a specific (e.g. ablated) config.
    pub fn adaptive_with(cfg: AdaptiveConfig) -> Scheme {
        Scheme {
            cc: CcKind::Gcc,
            adaptive: Some(cfg),
        }
    }

    /// Short name for experiment tables.
    pub fn name(&self) -> String {
        let cc = match self.cc {
            CcKind::Gcc => "gcc",
            CcKind::Fixed => "fixed",
            CcKind::NaiveAimd => "naive-aimd",
        };
        if self.adaptive.is_some() {
            format!("{cc}+adaptive")
        } else {
            cc.to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Scheme::baseline().name(), "gcc");
        assert_eq!(Scheme::adaptive().name(), "gcc+adaptive");
        assert_eq!(
            Scheme {
                cc: CcKind::Fixed,
                adaptive: None
            }
            .name(),
            "fixed"
        );
    }

    #[test]
    fn cc_builders_start_at_requested_rate() {
        for kind in [CcKind::Gcc, CcKind::Fixed, CcKind::NaiveAimd] {
            let cc = kind.build(2e6);
            assert_eq!(cc.target_bps(), 2e6, "{kind:?}");
        }
    }
}
