//! Machine-checked recovery contracts.
//!
//! The paper's headline claim is fast *recovery* — the encoder adapts
//! within a frame of learning about a bandwidth drop, instead of
//! riding the congestion controller's decay down. The invariants in
//! [`invariants`](crate::invariants) assert that a session is *sane*;
//! a [`ContractSpec`] asserts that it is *good*: an SLO-style,
//! declarative bound evaluated per cell from the metrics a session
//! already records, yielding one pass/fail [`ContractVerdict`] per
//! clause.
//!
//! Four clauses, all anchored at the cell's drop instant:
//!
//! * **recover-rate** — the encoder target must climb back to
//!   ≥ `recover_fraction` of the post-drop capacity within
//!   `recover_within` of the drop.
//! * **max-freeze** — no consecutive run of frozen frame slots may
//!   exceed `max_freeze`.
//! * **post-p95-latency** — the p95 glass-to-glass latency over the
//!   post-drop window must stay under `post_p95_ms`.
//! * **target-envelope** — once recovery time has elapsed, the target
//!   must never overshoot the post-drop capacity by more than
//!   `envelope_headroom` (a sender that "recovers" by blasting past
//!   capacity is building the very queue the paper's mechanism
//!   exists to avoid).
//!
//! Evaluation is a pure function of the [`SessionResult`], so verdicts
//! are byte-identical across reruns, worker counts, and cache hits,
//! and belong inside the harness report's byte-identity contract.

use ravel_metrics::FrameOutcomeKind;
use ravel_sim::{Dur, Time};

use crate::session::SessionResult;

/// Fallback frame interval when a cell recorded fewer than two frame
/// slots (30 fps, the canonical grid's rate).
const FALLBACK_FRAME_INTERVAL: Dur = Dur::micros(33_333);

/// A declarative recovery contract for one cell. All four clauses are
/// always evaluated; tune the bounds per scheme — the baseline's decay
/// needs far looser latency bounds than one-frame adaptation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContractSpec {
    /// The drop instant the clauses anchor to.
    pub drop_at: Time,
    /// Link capacity after the drop (bps).
    pub post_capacity_bps: f64,
    /// `recover-rate`: fraction of `post_capacity_bps` the target must
    /// reach back.
    pub recover_fraction: f64,
    /// `recover-rate`: how long after `drop_at` the target has to get
    /// there.
    pub recover_within: Dur,
    /// `max-freeze`: longest tolerated consecutive frozen stretch.
    pub max_freeze: Dur,
    /// `post-p95-latency`: p95 glass-to-glass bound over the post-drop
    /// window, in milliseconds.
    pub post_p95_ms: f64,
    /// `target-envelope`: tolerated overshoot above `post_capacity_bps`
    /// after recovery time has elapsed (0.10 = 10%).
    pub envelope_headroom: f64,
}

impl ContractSpec {
    /// A contract for a drop to `post_capacity_bps` at `drop_at`, with
    /// bounds every committed scheme meets on the canonical grid:
    /// recover to ≥ 50% of post-drop capacity within 8 s, never freeze
    /// longer than 2 s, and never overshoot capacity by more than 30%
    /// once recovered. The p95 bound is scheme-shaped — set it with
    /// [`ContractSpec::with_post_p95_ms`].
    pub fn for_drop(drop_at: Time, post_capacity_bps: f64) -> ContractSpec {
        ContractSpec {
            drop_at,
            post_capacity_bps,
            recover_fraction: 0.5,
            recover_within: Dur::secs(8),
            max_freeze: Dur::secs(2),
            post_p95_ms: 2_000.0,
            envelope_headroom: 0.3,
        }
    }

    /// This contract with a different post-drop p95 latency bound.
    pub fn with_post_p95_ms(mut self, bound_ms: f64) -> ContractSpec {
        self.post_p95_ms = bound_ms;
        self
    }

    /// This contract with a different recovery deadline.
    pub fn with_recover_within(mut self, within: Dur) -> ContractSpec {
        self.recover_within = within;
        self
    }

    /// This contract with a different freeze bound.
    pub fn with_max_freeze(mut self, bound: Dur) -> ContractSpec {
        self.max_freeze = bound;
        self
    }
}

/// One clause's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ContractVerdict {
    /// Stable clause name (`recover-rate`, `max-freeze`,
    /// `post-p95-latency`, `target-envelope`).
    pub name: &'static str,
    /// Whether the session honored the clause.
    pub pass: bool,
    /// Deterministic measurement detail (simulation values only).
    pub detail: String,
}

impl ContractVerdict {
    fn new(name: &'static str, pass: bool, detail: String) -> ContractVerdict {
        ContractVerdict { name, pass, detail }
    }
}

/// Evaluates every clause of `spec` against a finished session. The
/// rate clauses need the `target_bps` series, so contract cells must
/// run with `record_series`; an absent series fails the clause rather
/// than silently passing it.
pub fn evaluate(spec: &ContractSpec, result: &SessionResult) -> Vec<ContractVerdict> {
    vec![
        recover_rate(spec, result),
        max_freeze(spec, result),
        post_p95(spec, result),
        target_envelope(spec, result),
    ]
}

/// True when every verdict passed.
pub fn all_pass(verdicts: &[ContractVerdict]) -> bool {
    verdicts.iter().all(|v| v.pass)
}

fn recover_rate(spec: &ContractSpec, result: &SessionResult) -> ContractVerdict {
    let goal = spec.recover_fraction * spec.post_capacity_bps;
    let Some(series) = result.series.get("target_bps") else {
        return ContractVerdict::new(
            "recover-rate",
            false,
            "target_bps series absent (cell must record series)".into(),
        );
    };
    let recovered_at = series
        .points()
        .iter()
        .find(|&&(at, v)| at >= spec.drop_at && v >= goal)
        .map(|&(at, _)| at);
    match recovered_at {
        Some(at) => {
            let took = at.saturating_since(spec.drop_at);
            ContractVerdict::new(
                "recover-rate",
                took <= spec.recover_within,
                format!(
                    "target reached {goal:.0} bps {took} after the drop (bound {})",
                    spec.recover_within
                ),
            )
        }
        None => ContractVerdict::new(
            "recover-rate",
            false,
            format!(
                "target never reached {goal:.0} bps after the drop at {}",
                spec.drop_at
            ),
        ),
    }
}

fn max_freeze(spec: &ContractSpec, result: &SessionResult) -> ContractVerdict {
    let records = result.recorder.records();
    // Slot duration from the recorded cadence itself, so the clause
    // needs no side channel for the frame rate.
    let dt = match (records.first(), records.last()) {
        (Some(first), Some(last)) if records.len() >= 2 => Dur::from_secs_f64(
            last.pts.saturating_since(first.pts).as_secs_f64() / (records.len() - 1) as f64,
        ),
        _ => FALLBACK_FRAME_INTERVAL,
    };
    let mut longest = 0usize;
    let mut run = 0usize;
    for r in records {
        if r.outcome == FrameOutcomeKind::Frozen {
            run += 1;
            longest = longest.max(run);
        } else {
            run = 0;
        }
    }
    let worst = Dur::from_secs_f64(longest as f64 * dt.as_secs_f64());
    ContractVerdict::new(
        "max-freeze",
        worst <= spec.max_freeze,
        format!(
            "longest freeze {worst} ({longest} slots at {dt}/slot, bound {})",
            spec.max_freeze
        ),
    )
}

fn post_p95(spec: &ContractSpec, result: &SessionResult) -> ContractVerdict {
    let s = result.recorder.summarize(spec.drop_at, Time::FAR_FUTURE);
    ContractVerdict::new(
        "post-p95-latency",
        s.p95_latency_ms <= spec.post_p95_ms,
        format!(
            "post-drop p95 {:.1} ms over {} frames (bound {:.0} ms)",
            s.p95_latency_ms, s.frames, spec.post_p95_ms
        ),
    )
}

fn target_envelope(spec: &ContractSpec, result: &SessionResult) -> ContractVerdict {
    let ceiling = spec.post_capacity_bps * (1.0 + spec.envelope_headroom);
    let settle = spec.drop_at + spec.recover_within;
    let Some(series) = result.series.get("target_bps") else {
        return ContractVerdict::new(
            "target-envelope",
            false,
            "target_bps series absent (cell must record series)".into(),
        );
    };
    let worst = series
        .points()
        .iter()
        .filter(|&&(at, _)| at >= settle)
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max);
    ContractVerdict::new(
        "target-envelope",
        worst <= ceiling,
        format!("post-recovery target peaked at {worst:.0} bps (ceiling {ceiling:.0} bps)"),
    )
}

#[cfg(test)]
// `&[300..320]` below really is a one-element slice of frozen-frame
// index ranges, not a mistyped `[300, 320]` pair.
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;
    use ravel_metrics::FrameRecord;

    /// A synthetic post-drop session: capacity drops 4 Mbps → 1 Mbps at
    /// t=10 s, the target follows `targets` (one sample per second from
    /// t=0), and `frozen` names the frozen frame-slot indexes of a
    /// 30 fps run from t=0 to t=20 s.
    fn synthetic(targets: &[(u64, f64)], frozen: &[std::ops::Range<usize>]) -> SessionResult {
        let mut result = SessionResult::empty();
        for &(sec, bps) in targets {
            result.series.push("target_bps", Time::from_secs(sec), bps);
        }
        let slots = 20 * 30;
        for i in 0..slots {
            let is_frozen = frozen.iter().any(|r| r.contains(&i));
            result.recorder.push(FrameRecord {
                pts: Time::from_millis(i as u64 * 33),
                outcome: if is_frozen {
                    FrameOutcomeKind::Frozen
                } else {
                    FrameOutcomeKind::Displayed
                },
                latency: (!is_frozen).then(|| Dur::millis(80)),
                ssim: if is_frozen { 0.7 } else { 0.95 },
                psnr_db: (!is_frozen).then_some(38.0),
            });
        }
        result
    }

    fn spec() -> ContractSpec {
        ContractSpec::for_drop(Time::from_secs(10), 1e6).with_post_p95_ms(200.0)
    }

    #[test]
    fn healthy_recovery_passes_every_clause() {
        // Target drops with the link, then climbs back over 0.5 Mbps
        // (50% of post capacity) well within 8 s.
        let result = synthetic(
            &[
                (0, 4e6),
                (5, 4e6),
                (10, 3e5),
                (12, 6e5),
                (14, 9.5e5),
                (19, 9.5e5),
            ],
            &[300..320],
        );
        let verdicts = evaluate(&spec(), &result);
        assert_eq!(verdicts.len(), 4);
        assert!(all_pass(&verdicts), "verdicts: {verdicts:#?}");
        let names: Vec<_> = verdicts.iter().map(|v| v.name).collect();
        assert_eq!(
            names,
            [
                "recover-rate",
                "max-freeze",
                "post-p95-latency",
                "target-envelope"
            ]
        );
    }

    #[test]
    fn unrecovered_target_fails_recover_rate() {
        // Stuck at 0.3 Mbps < 50% of 1 Mbps forever after the drop.
        let result = synthetic(&[(0, 4e6), (10, 3e5), (19, 3e5)], &[]);
        let verdicts = evaluate(&spec(), &result);
        let v = &verdicts[0];
        assert_eq!(v.name, "recover-rate");
        assert!(!v.pass);
        assert!(v.detail.contains("never reached"), "{}", v.detail);
    }

    #[test]
    fn slow_recovery_fails_the_deadline() {
        // Recovers, but 9.5 s after the drop — past the 8 s bound. The
        // envelope clause must not be confused by the late climb.
        let result = synthetic(&[(0, 4e6), (10, 3e5), (19, 6e5)], &[]);
        let verdicts = evaluate(&spec(), &result);
        assert!(!verdicts[0].pass, "{}", verdicts[0].detail);
    }

    #[test]
    fn long_freeze_fails_max_freeze() {
        // 90 consecutive frozen slots at ~33 ms ≈ 3 s > the 2 s bound.
        let result = synthetic(&[(0, 4e6), (12, 9e5)], &[310..400]);
        let verdicts = evaluate(&spec(), &result);
        let v = &verdicts[1];
        assert_eq!(v.name, "max-freeze");
        assert!(!v.pass, "{}", v.detail);
        // Two shorter runs summing past the bound still pass: the
        // clause bounds CONSECUTIVE freezes.
        let result = synthetic(&[(0, 4e6), (12, 9e5)], &[310..355, 400..445]);
        assert!(evaluate(&spec(), &result)[1].pass);
    }

    #[test]
    fn latency_tail_fails_post_p95() {
        let mut result = synthetic(&[(0, 4e6), (12, 9e5)], &[]);
        // Rewrite the post-drop tail with 400 ms latencies: p95 over
        // the post-drop window blows the 200 ms bound.
        let mut doctored = SessionResult::empty();
        for r in result.recorder.records() {
            let mut r = *r;
            if r.pts >= Time::from_secs(10) {
                r.latency = Some(Dur::millis(400));
            }
            doctored.recorder.push(r);
        }
        mem_swap_series(&mut result, &mut doctored);
        let verdicts = evaluate(&spec(), &doctored);
        let v = &verdicts[2];
        assert_eq!(v.name, "post-p95-latency");
        assert!(!v.pass, "{}", v.detail);
    }

    /// Moves the series from `a` into `b` (SessionResult has no Clone
    /// for doctoring in place).
    fn mem_swap_series(a: &mut SessionResult, b: &mut SessionResult) {
        std::mem::swap(&mut a.series, &mut b.series);
    }

    #[test]
    fn overshoot_after_recovery_fails_the_envelope() {
        // Climbs back — and keeps going to 2 Mbps, 2x the post-drop
        // capacity: "recovered" by building a standing queue.
        let result = synthetic(&[(0, 4e6), (10, 3e5), (14, 9e5), (19, 2e6)], &[]);
        let verdicts = evaluate(&spec(), &result);
        let v = &verdicts[3];
        assert_eq!(v.name, "target-envelope");
        assert!(!v.pass, "{}", v.detail);
        // Overshoot DURING the recovery window is not a violation (the
        // controller may probe); only the settled tail is bounded.
        let result = synthetic(&[(0, 4e6), (10, 3e5), (14, 2e6), (19, 9e5)], &[]);
        assert!(evaluate(&spec(), &result)[3].pass);
    }

    #[test]
    fn missing_series_fails_closed() {
        let mut result = SessionResult::empty();
        result.recorder.push(FrameRecord {
            pts: Time::ZERO,
            outcome: FrameOutcomeKind::Displayed,
            latency: Some(Dur::millis(50)),
            ssim: 0.95,
            psnr_db: Some(38.0),
        });
        let verdicts = evaluate(&spec(), &result);
        assert!(!verdicts[0].pass);
        assert!(!verdicts[3].pass);
        assert!(verdicts[0].detail.contains("series absent"));
        // The recorder-based clauses still evaluate.
        assert!(verdicts[1].pass);
        assert!(verdicts[2].pass);
    }

    #[test]
    fn verdicts_are_deterministic() {
        let result = synthetic(&[(0, 4e6), (10, 3e5), (14, 9e5)], &[305..330]);
        assert_eq!(evaluate(&spec(), &result), evaluate(&spec(), &result));
    }
}
