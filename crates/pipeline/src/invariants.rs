//! Session invariants: laws every run must obey, chaos or not.
//!
//! [`run_session`](crate::run_session) threads an [`InvariantChecker`]
//! through the event loop and the display post-pass. Violations are
//! *collected, not panicked*: they surface in
//! [`SessionResult::violations`](crate::SessionResult) so a harness can
//! report them per cell, shrink the schedule that caused them, and fail
//! CI — without a panic tearing down a 200-cell grid.
//!
//! The checked laws:
//!
//! * **Conservation** — every packet handed to the link is accounted
//!   for: delivered arrivals + queue drops + random losses + chaos
//!   losses + in-flight at session end, with chaos duplicates added to
//!   the sent side.
//! * **Bounded backlog** — the link's drop-tail queue never exceeds its
//!   configured capacity.
//! * **Monotonic delivery** — no packet arrives before it was sent, and
//!   the event clock never runs backwards.
//! * **Finite metrics** — no NaN/∞ reaches the latency recorder or the
//!   recorded time series.
//! * **Freeze termination** — once the last fault clears, the decoder
//!   displays a fresh frame within a bound (the PLI → keyframe path
//!   terminates every reference-chain break).
//! * **Rate recovery** — the encoder target climbs back to a fraction
//!   of the available rate within a bound after the last fault.
//! * **Runaway termination** — the event loop stays within an
//!   event-count budget and sim-time horizon derived from the trace
//!   spec; a session that self-schedules forever is cut off and
//!   flagged instead of hanging its worker.

use std::fmt;

/// The individual session laws the checker can flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Packet conservation at session end.
    Conservation,
    /// Link backlog within the configured queue capacity.
    BoundedBacklog,
    /// Arrivals never precede sends; the event clock is monotonic.
    MonotonicDelivery,
    /// No NaN/∞ in per-frame records or recorded series.
    FiniteMetrics,
    /// Decoder freeze ends within a bound once impairment clears.
    FreezeTermination,
    /// Target bitrate recovers within a bound after the last fault.
    RateRecovery,
    /// The session exceeded its event-count budget or sim-time horizon
    /// and was terminated by the runaway guard.
    RunawayTermination,
}

impl Invariant {
    /// Stable, report-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            Invariant::Conservation => "conservation",
            Invariant::BoundedBacklog => "bounded-backlog",
            Invariant::MonotonicDelivery => "monotonic-delivery",
            Invariant::FiniteMetrics => "finite-metrics",
            Invariant::FreezeTermination => "freeze-termination",
            Invariant::RateRecovery => "rate-recovery",
            Invariant::RunawayTermination => "runaway-termination",
        }
    }
}

/// One violated invariant with a deterministic human-readable detail.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantViolation {
    /// Which law was broken.
    pub invariant: Invariant,
    /// What exactly went wrong (deterministic: pure simulation values,
    /// no wall-clock content, so reports stay byte-identical).
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant.name(), self.detail)
    }
}

/// Collects violations, keeping the first occurrence per invariant so a
/// systemic breach (e.g. thousands of non-finite samples) yields one
/// diagnostic instead of flooding the report.
#[derive(Debug, Clone, Default)]
pub struct InvariantChecker {
    violations: Vec<InvariantViolation>,
}

impl InvariantChecker {
    /// An empty checker.
    pub fn new() -> InvariantChecker {
        InvariantChecker::default()
    }

    /// True if `invariant` has already been flagged.
    pub fn seen(&self, invariant: Invariant) -> bool {
        self.violations.iter().any(|v| v.invariant == invariant)
    }

    /// Records a violation unless this invariant was already flagged.
    pub fn violate(&mut self, invariant: Invariant, detail: String) {
        if !self.seen(invariant) {
            self.violations
                .push(InvariantViolation { invariant, detail });
        }
    }

    /// Checks `condition`, flagging `invariant` with `detail()` if false.
    pub fn check(
        &mut self,
        invariant: Invariant,
        condition: bool,
        detail: impl FnOnce() -> String,
    ) {
        if !condition {
            self.violate(invariant, detail());
        }
    }

    /// The violations collected so far, in first-flagged order. Lets
    /// live instrumentation (the observability log) detect and emit
    /// newly flagged violations mid-run.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// The collected violations, in first-flagged order.
    pub fn into_violations(self) -> Vec<InvariantViolation> {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_occurrence_per_invariant_wins() {
        let mut c = InvariantChecker::new();
        c.violate(Invariant::Conservation, "first".into());
        c.violate(Invariant::Conservation, "second".into());
        c.violate(Invariant::FiniteMetrics, "other".into());
        let v = c.into_violations();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].detail, "first");
        assert_eq!(v[0].to_string(), "conservation: first");
        assert_eq!(v[1].invariant, Invariant::FiniteMetrics);
    }

    #[test]
    fn check_only_fires_on_false() {
        let mut c = InvariantChecker::new();
        c.check(Invariant::BoundedBacklog, true, || unreachable!());
        c.check(Invariant::BoundedBacklog, false, || "too deep".into());
        assert!(c.seen(Invariant::BoundedBacklog));
        assert_eq!(c.into_violations().len(), 1);
    }
}
