//! # ravel-pipeline — the end-to-end RTC session
//!
//! Wires every substrate into one deterministic discrete-event session:
//!
//! ```text
//! VideoSource → [AdaptiveController?] → Encoder → Packetizer → Pacer
//!      → Link (bottleneck: queue + capacity trace + propagation)
//!      → FrameAssembler → display accounting (→ Decoder model)
//!      ↖ FeedbackBuilder ← per-packet arrivals
//!        (reports return over the reverse path → GCC → controller)
//! ```
//!
//! One call to [`run_session`] produces a [`SessionResult`] holding the
//! per-frame latency/quality records and optional time series — the raw
//! material for every table and figure in EXPERIMENTS.md.
//!
//! The **baseline** scheme is GCC driving the encoder through the
//! production slow path (`set_target_bitrate`); the **adaptive** scheme
//! inserts `ravel-core`'s controller in between. Everything else —
//! content, codec, pacing, link, feedback timing, seeds — is identical
//! across schemes, so measured deltas are attributable to the paper's
//! mechanism alone.

#![warn(missing_docs)]

pub mod contracts;
pub mod invariants;
pub mod scheme;
pub mod session;

pub use contracts::{all_pass, evaluate, ContractSpec, ContractVerdict};
pub use invariants::{Invariant, InvariantChecker, InvariantViolation};
pub use scheme::{CcKind, Scheme};
pub use session::{
    run_session, run_session_chaos, run_session_chaos_obs, run_session_corrupt,
    run_session_corrupt_obs, run_session_faults, run_session_guarded, run_session_obs,
    run_sessions, run_sessions_obs, run_sessions_pooled, InjectedFault, KernelWorkspace,
    SessionConfig, SessionGuard, SessionResult, CANCEL_POLL_EVERY_EVENTS, RUNAWAY_BASE_EVENTS,
    RUNAWAY_EVENTS_PER_SIM_SEC,
};
