//! Scripted content: sessions whose content class changes over time.
//!
//! Real calls are not stationary: a meeting starts as talking heads,
//! switches to screen share for the slides, and back. Each switch is a
//! scene cut *and* a regime change for the complexity processes — the
//! worst case for rate control if it coincides with a bandwidth drop.
//! [`ScriptedSource`] plays a timeline of [`ContentClass`] segments as a
//! single continuous frame stream.

use ravel_sim::{Dur, Time};

use crate::profile::ContentClass;
use crate::resolution::Resolution;
use crate::source::{RawFrame, VideoSource};

/// One segment of the timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// When this segment's content begins.
    pub start: Time,
    /// What is on screen from then on.
    pub class: ContentClass,
}

/// A frame source that switches content class on a timeline.
#[derive(Debug, Clone)]
pub struct ScriptedSource {
    segments: Vec<Segment>,
    /// One underlying source per segment (pre-built so switching does
    /// not disturb determinism), all sharing fps/resolution.
    sources: Vec<VideoSource>,
    active: usize,
    next_index: u64,
    fps: u32,
    frame_interval: Dur,
    resolution: Resolution,
}

impl ScriptedSource {
    /// Creates a scripted source. Segments must start at strictly
    /// increasing times and the first must start at `Time::ZERO`.
    pub fn new(
        segments: Vec<Segment>,
        resolution: Resolution,
        fps: u32,
        seed: u64,
    ) -> ScriptedSource {
        assert!(!segments.is_empty(), "ScriptedSource: no segments");
        assert_eq!(
            segments[0].start,
            Time::ZERO,
            "ScriptedSource: first segment must start at t=0"
        );
        for pair in segments.windows(2) {
            assert!(
                pair[0].start < pair[1].start,
                "ScriptedSource: segments must start in increasing order"
            );
        }
        let sources = segments
            .iter()
            .enumerate()
            .map(|(i, seg)| {
                VideoSource::new(seg.class.profile(), resolution, fps, seed ^ (i as u64) << 8)
            })
            .collect();
        ScriptedSource {
            segments,
            sources,
            active: 0,
            next_index: 0,
            fps,
            frame_interval: Dur::micros(1_000_000 / fps as u64),
            resolution,
        }
    }

    /// A canonical meeting: talking head, screen share for the middle
    /// stretch, then talking head again.
    pub fn meeting(share_from: Time, share_until: Time, fps: u32, seed: u64) -> ScriptedSource {
        ScriptedSource::new(
            vec![
                Segment {
                    start: Time::ZERO,
                    class: ContentClass::TalkingHead,
                },
                Segment {
                    start: share_from,
                    class: ContentClass::ScreenShare,
                },
                Segment {
                    start: share_until,
                    class: ContentClass::TalkingHead,
                },
            ],
            Resolution::P720,
            fps,
            seed,
        )
    }

    /// Frames per second.
    pub fn fps(&self) -> u32 {
        self.fps
    }

    /// Interval between frames.
    pub fn frame_interval(&self) -> Dur {
        self.frame_interval
    }

    /// Capture resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Capture time of frame `index`.
    pub fn pts_of(&self, index: u64) -> Time {
        Time::ZERO + self.frame_interval * index
    }

    /// The content class on screen at `at`.
    pub fn class_at(&self, at: Time) -> ContentClass {
        let idx = self
            .segments
            .partition_point(|s| s.start <= at)
            .saturating_sub(1);
        self.segments[idx].class
    }

    /// Produces the next frame. A segment switch forces a scene cut on
    /// its first frame (the screen content changed completely).
    pub fn next_frame(&mut self) -> RawFrame {
        let index = self.next_index;
        self.next_index += 1;
        let pts = self.pts_of(index);

        let seg = self
            .segments
            .partition_point(|s| s.start <= pts)
            .saturating_sub(1);
        let switched = seg != self.active;
        self.active = seg;

        // Pull the frame from the active segment's process; restamp its
        // index/pts to the global timeline.
        let mut frame = self.sources[seg].next_frame();
        frame.index = index;
        frame.pts = pts;
        if switched {
            frame.complexity.scene_cut = true;
            // The first frame of new content is all fresh pixels.
            frame.complexity.spatial *= 1.3;
        }
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meeting() -> ScriptedSource {
        ScriptedSource::meeting(Time::from_secs(5), Time::from_secs(10), 30, 1)
    }

    #[test]
    fn timeline_classes() {
        let s = meeting();
        assert_eq!(s.class_at(Time::ZERO), ContentClass::TalkingHead);
        assert_eq!(s.class_at(Time::from_secs(5)), ContentClass::ScreenShare);
        assert_eq!(s.class_at(Time::from_secs(7)), ContentClass::ScreenShare);
        assert_eq!(s.class_at(Time::from_secs(10)), ContentClass::TalkingHead);
    }

    #[test]
    fn frames_are_continuous() {
        let mut s = meeting();
        for i in 0..400u64 {
            let f = s.next_frame();
            assert_eq!(f.index, i);
            assert_eq!(f.pts, s.pts_of(i));
        }
    }

    #[test]
    fn switches_force_scene_cuts() {
        let mut s = meeting();
        let mut cut_frames = Vec::new();
        for _ in 0..400 {
            let f = s.next_frame();
            if f.complexity.scene_cut {
                cut_frames.push(f.index);
            }
        }
        // First frame, plus the two switches at ~5 s and ~10 s (the 30 fps
        // grid puts frame 150 at 4.99995 s, so the switch lands on 151).
        assert!(cut_frames.contains(&0));
        assert!(
            cut_frames.iter().any(|i| (150..=151).contains(i)),
            "cuts: {cut_frames:?}"
        );
        assert!(
            cut_frames.iter().any(|i| (300..=301).contains(i)),
            "cuts: {cut_frames:?}"
        );
    }

    #[test]
    fn screen_share_segment_is_calmer() {
        let mut s = meeting();
        let mut talking = 0.0;
        let mut share = 0.0;
        for _ in 0..450 {
            let f = s.next_frame();
            if f.pts >= Time::from_secs(5) && f.pts < Time::from_secs(10) {
                share += f.complexity.temporal;
            } else if f.pts < Time::from_secs(5) {
                talking += f.complexity.temporal;
            }
        }
        // 150 frames each; screen share must be far calmer.
        assert!(share < talking / 2.0, "share {share} vs talking {talking}");
    }

    #[test]
    fn deterministic() {
        let mut a = meeting();
        let mut b = meeting();
        for _ in 0..300 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }

    #[test]
    #[should_panic(expected = "first segment")]
    fn rejects_late_first_segment() {
        ScriptedSource::new(
            vec![Segment {
                start: Time::from_secs(1),
                class: ContentClass::Gaming,
            }],
            Resolution::P720,
            30,
            0,
        );
    }

    #[test]
    #[should_panic(expected = "increasing order")]
    fn rejects_unordered_segments() {
        ScriptedSource::new(
            vec![
                Segment {
                    start: Time::ZERO,
                    class: ContentClass::Gaming,
                },
                Segment {
                    start: Time::ZERO,
                    class: ContentClass::Sports,
                },
            ],
            Resolution::P720,
            30,
            0,
        );
    }
}
