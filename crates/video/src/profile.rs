//! Content classes and their complexity-process parameters.

use std::fmt;

/// The four content classes used throughout the evaluation (E6 sweeps
/// them). Each maps to a [`ContentProfile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentClass {
    /// A video call: low motion, moderate texture, rare scene cuts.
    TalkingHead,
    /// Screen sharing: very low motion with bursty full-screen changes
    /// (slide flips show up as scene cuts).
    ScreenShare,
    /// Game streaming: high motion, high texture, frequent cuts.
    Gaming,
    /// Sports: the hardest case — sustained high motion and panning.
    Sports,
}

impl ContentClass {
    /// All classes, in evaluation order.
    pub const ALL: [ContentClass; 4] = [
        ContentClass::TalkingHead,
        ContentClass::ScreenShare,
        ContentClass::Gaming,
        ContentClass::Sports,
    ];

    /// The profile parameters for this class.
    pub fn profile(self) -> ContentProfile {
        match self {
            ContentClass::TalkingHead => ContentProfile {
                class: self,
                spatial_mean: 1.0,
                temporal_mean: 0.35,
                ar_coeff: 0.97,
                noise_std: 0.04,
                scene_cuts_per_min: 0.5,
                cut_complexity_boost: 1.4,
            },
            ContentClass::ScreenShare => ContentProfile {
                class: self,
                spatial_mean: 0.8,
                temporal_mean: 0.08,
                ar_coeff: 0.995,
                noise_std: 0.02,
                scene_cuts_per_min: 4.0,
                cut_complexity_boost: 2.2,
            },
            ContentClass::Gaming => ContentProfile {
                class: self,
                spatial_mean: 1.3,
                temporal_mean: 0.9,
                ar_coeff: 0.9,
                noise_std: 0.1,
                scene_cuts_per_min: 6.0,
                cut_complexity_boost: 1.6,
            },
            ContentClass::Sports => ContentProfile {
                class: self,
                spatial_mean: 1.2,
                temporal_mean: 1.1,
                ar_coeff: 0.93,
                noise_std: 0.08,
                scene_cuts_per_min: 3.0,
                cut_complexity_boost: 1.5,
            },
        }
    }
}

impl fmt::Display for ContentClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ContentClass::TalkingHead => "talking-head",
            ContentClass::ScreenShare => "screen-share",
            ContentClass::Gaming => "gaming",
            ContentClass::Sports => "sports",
        };
        f.write_str(name)
    }
}

/// Parameters of the per-frame complexity process for one content class.
///
/// Spatial/temporal complexity each follow a mean-reverting AR(1):
/// `x[n+1] = μ + ρ·(x[n] − μ) + σ·ε`, with a Poisson scene-cut process
/// that multiplies complexity by `cut_complexity_boost` for the cut frame
/// and forces an I-frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentProfile {
    /// The class these parameters describe.
    pub class: ContentClass,
    /// Long-run mean spatial complexity (1.0 = reference content).
    pub spatial_mean: f64,
    /// Long-run mean temporal complexity (relative to spatial).
    pub temporal_mean: f64,
    /// AR(1) coefficient ρ in `[0, 1)`: higher = smoother content.
    pub ar_coeff: f64,
    /// Innovation standard deviation σ.
    pub noise_std: f64,
    /// Average scene cuts per minute (Poisson rate).
    pub scene_cuts_per_min: f64,
    /// Multiplier applied to the cut frame's complexity.
    pub cut_complexity_boost: f64,
}

impl ContentProfile {
    /// Validates parameter ranges; called by the source at construction.
    pub fn validate(&self) {
        assert!(
            self.spatial_mean > 0.0 && self.spatial_mean.is_finite(),
            "profile: bad spatial_mean"
        );
        assert!(
            self.temporal_mean >= 0.0 && self.temporal_mean.is_finite(),
            "profile: bad temporal_mean"
        );
        assert!(
            (0.0..1.0).contains(&self.ar_coeff),
            "profile: ar_coeff must be in [0,1)"
        );
        assert!(self.noise_std >= 0.0, "profile: negative noise_std");
        assert!(
            self.scene_cuts_per_min >= 0.0,
            "profile: negative scene cut rate"
        );
        assert!(
            self.cut_complexity_boost >= 1.0,
            "profile: cut boost must be >= 1"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for class in ContentClass::ALL {
            class.profile().validate();
        }
    }

    #[test]
    fn screen_share_is_smoothest() {
        // Screen share should have the highest AR coefficient (stillest
        // content) and lowest temporal mean.
        let ss = ContentClass::ScreenShare.profile();
        for class in ContentClass::ALL {
            let p = class.profile();
            assert!(ss.ar_coeff >= p.ar_coeff);
            assert!(ss.temporal_mean <= p.temporal_mean);
        }
    }

    #[test]
    fn sports_has_highest_motion() {
        let sp = ContentClass::Sports.profile();
        for class in ContentClass::ALL {
            assert!(sp.temporal_mean >= class.profile().temporal_mean);
        }
    }

    #[test]
    #[should_panic(expected = "ar_coeff")]
    fn validate_rejects_unit_root() {
        let mut p = ContentClass::TalkingHead.profile();
        p.ar_coeff = 1.0;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "cut boost")]
    fn validate_rejects_sub_unit_boost() {
        let mut p = ContentClass::Gaming.profile();
        p.cut_complexity_boost = 0.5;
        p.validate();
    }

    #[test]
    fn display_names() {
        assert_eq!(ContentClass::TalkingHead.to_string(), "talking-head");
        assert_eq!(ContentClass::Sports.to_string(), "sports");
    }
}
