//! The frame source: a capture clock plus complexity processes.

use ravel_sim::{Dur, Rng, Time};

use crate::profile::ContentProfile;
use crate::resolution::Resolution;

/// Per-frame complexity measurements, as an encoder's pre-analysis
/// (lookahead) would estimate them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameComplexity {
    /// Texture/detail complexity; drives intra-coded bits.
    pub spatial: f64,
    /// Motion/change complexity; drives inter-coded bits.
    pub temporal: f64,
    /// True if this frame is a scene cut (forces an I-frame).
    pub scene_cut: bool,
}

impl FrameComplexity {
    /// A neutral reference complexity (spatial 1.0, temporal 0.35), used
    /// by tests and as the R–D model's calibration point.
    pub fn reference() -> FrameComplexity {
        FrameComplexity {
            spatial: 1.0,
            temporal: 0.35,
            scene_cut: false,
        }
    }
}

/// An uncompressed frame handed to the encoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawFrame {
    /// Zero-based capture index.
    pub index: u64,
    /// Capture timestamp (the latency clock starts here).
    pub pts: Time,
    /// Capture resolution.
    pub resolution: Resolution,
    /// Pre-analysis complexity estimates.
    pub complexity: FrameComplexity,
}

/// A deterministic synthetic camera: emits frames at a fixed rate with
/// AR(1) complexity dynamics and Poisson scene cuts.
///
/// ```
/// use ravel_video::{ContentClass, Resolution, VideoSource};
///
/// let mut src = VideoSource::new(
///     ContentClass::TalkingHead.profile(),
///     Resolution::P720,
///     30,
///     42,
/// );
/// let f0 = src.next_frame();
/// let f1 = src.next_frame();
/// assert_eq!(f0.index, 0);
/// assert_eq!(f1.index, 1);
/// assert!(f1.pts > f0.pts);
/// ```
#[derive(Debug, Clone)]
pub struct VideoSource {
    profile: ContentProfile,
    resolution: Resolution,
    fps: u32,
    frame_interval: Dur,
    rng: Rng,
    next_index: u64,
    spatial: f64,
    temporal: f64,
    /// Per-frame scene-cut probability derived from the per-minute rate.
    cut_prob: f64,
}

impl VideoSource {
    /// Creates a source emitting `fps` frames per second at `resolution`,
    /// with complexity dynamics from `profile`, seeded by `seed`.
    pub fn new(
        profile: ContentProfile,
        resolution: Resolution,
        fps: u32,
        seed: u64,
    ) -> VideoSource {
        profile.validate();
        assert!(fps > 0, "VideoSource: zero fps");
        let frame_interval = Dur::micros(1_000_000 / fps as u64);
        let cut_prob = profile.scene_cuts_per_min / 60.0 / fps as f64;
        VideoSource {
            spatial: profile.spatial_mean,
            temporal: profile.temporal_mean,
            profile,
            resolution,
            fps,
            frame_interval,
            rng: Rng::substream(seed, 0xF00D),
            next_index: 0,
            cut_prob,
        }
    }

    /// Frames per second.
    pub fn fps(&self) -> u32 {
        self.fps
    }

    /// Interval between successive frames.
    pub fn frame_interval(&self) -> Dur {
        self.frame_interval
    }

    /// The capture resolution (frames report this; the *encoder* may
    /// downscale independently).
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// The content profile driving complexity.
    pub fn profile(&self) -> &ContentProfile {
        &self.profile
    }

    /// Capture time of frame `index`.
    pub fn pts_of(&self, index: u64) -> Time {
        Time::ZERO + self.frame_interval * index
    }

    /// Produces the next frame, advancing the complexity processes.
    pub fn next_frame(&mut self) -> RawFrame {
        let index = self.next_index;
        self.next_index += 1;

        let p = &self.profile;
        // AR(1) mean-reverting step for each process.
        self.spatial = ar1_step(
            &mut self.rng,
            self.spatial,
            p.spatial_mean,
            p.ar_coeff,
            p.noise_std,
        );
        self.temporal = ar1_step(
            &mut self.rng,
            self.temporal,
            p.temporal_mean,
            p.ar_coeff,
            p.noise_std,
        );

        let scene_cut = index == 0 || self.rng.chance(self.cut_prob);
        let boost = if scene_cut && index != 0 {
            // A cut kicks both processes up; they then mean-revert.
            self.spatial *= p.cut_complexity_boost;
            self.temporal = (self.temporal * p.cut_complexity_boost).max(p.temporal_mean);
            p.cut_complexity_boost
        } else {
            1.0
        };
        let _ = boost;

        RawFrame {
            index,
            pts: self.pts_of(index),
            resolution: self.resolution,
            complexity: FrameComplexity {
                spatial: self.spatial,
                temporal: self.temporal,
                scene_cut,
            },
        }
    }
}

/// One mean-reverting AR(1) step, floored at 10% of the mean so
/// complexity never collapses to zero (real content always costs bits).
fn ar1_step(rng: &mut Rng, x: f64, mean: f64, rho: f64, sigma: f64) -> f64 {
    let next = mean + rho * (x - mean) + sigma * rng.normal();
    next.max(mean * 0.1).max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ContentClass;

    fn source(class: ContentClass, seed: u64) -> VideoSource {
        VideoSource::new(class.profile(), Resolution::P720, 30, seed)
    }

    #[test]
    fn frame_timing_is_exact() {
        let mut src = source(ContentClass::TalkingHead, 1);
        let f0 = src.next_frame();
        let f1 = src.next_frame();
        let f2 = src.next_frame();
        assert_eq!(f0.pts, Time::ZERO);
        assert_eq!(f1.pts, Time::from_micros(33_333));
        assert_eq!(f2.pts, Time::from_micros(66_666));
        assert_eq!(src.frame_interval(), Dur::micros(33_333));
    }

    #[test]
    fn first_frame_is_scene_cut() {
        let mut src = source(ContentClass::Gaming, 2);
        assert!(src.next_frame().complexity.scene_cut);
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = source(ContentClass::Sports, 7);
        let mut b = source(ContentClass::Sports, 7);
        for _ in 0..500 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }

    #[test]
    fn complexity_stays_near_profile_mean() {
        let mut src = source(ContentClass::TalkingHead, 3);
        let n = 3000;
        let mut spatial_sum = 0.0;
        for _ in 0..n {
            spatial_sum += src.next_frame().complexity.spatial;
        }
        let mean = spatial_sum / n as f64;
        let target = ContentClass::TalkingHead.profile().spatial_mean;
        // Scene cuts bias the mean slightly upward; allow 15%.
        assert!(
            (mean - target).abs() / target < 0.15,
            "mean {mean} vs target {target}"
        );
    }

    #[test]
    fn complexity_always_positive() {
        for class in ContentClass::ALL {
            let mut src = source(class, 4);
            for _ in 0..2000 {
                let c = src.next_frame().complexity;
                assert!(c.spatial > 0.0);
                assert!(c.temporal > 0.0);
            }
        }
    }

    #[test]
    fn scene_cut_rate_matches_profile() {
        let mut src = source(ContentClass::Gaming, 5);
        let minutes = 30;
        let frames = 30 * 60 * minutes;
        let cuts = (0..frames)
            .filter(|_| src.next_frame().complexity.scene_cut)
            .count()
            - 1; // exclude the forced first-frame cut
        let per_min = cuts as f64 / minutes as f64;
        let target = ContentClass::Gaming.profile().scene_cuts_per_min;
        assert!(
            (per_min - target).abs() / target < 0.35,
            "observed {per_min}/min vs target {target}/min"
        );
    }

    #[test]
    fn screen_share_less_temporal_than_gaming() {
        let mut ss = source(ContentClass::ScreenShare, 6);
        let mut gm = source(ContentClass::Gaming, 6);
        let n = 2000;
        let ss_t: f64 = (0..n).map(|_| ss.next_frame().complexity.temporal).sum();
        let gm_t: f64 = (0..n).map(|_| gm.next_frame().complexity.temporal).sum();
        assert!(ss_t < gm_t / 3.0, "screen {ss_t} vs gaming {gm_t}");
    }

    #[test]
    #[should_panic(expected = "zero fps")]
    fn zero_fps_panics() {
        VideoSource::new(ContentClass::TalkingHead.profile(), Resolution::P720, 0, 0);
    }

    #[test]
    fn pts_of_matches_emitted() {
        let mut src = source(ContentClass::TalkingHead, 8);
        for _ in 0..10 {
            let f = src.next_frame();
            assert_eq!(src.pts_of(f.index), f.pts);
        }
    }

    proptest::proptest! {
        /// Complexity never collapses below the 10%-of-mean floor for any
        /// seed or class.
        #[test]
        fn complexity_floor_invariant(seed in 0u64..1000) {
            let mut src = source(ContentClass::Sports, seed);
            let floor = ContentClass::Sports.profile().spatial_mean * 0.1 - 1e-9;
            for _ in 0..200 {
                let c = src.next_frame().complexity;
                proptest::prop_assert!(c.spatial >= floor);
            }
        }
    }
}
