//! Capture/encode resolutions and the adaptation ladder.

use std::fmt;

/// A video resolution in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Resolution {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl Resolution {
    /// 1920×1080.
    pub const P1080: Resolution = Resolution::new(1920, 1080);
    /// 1280×720 — the default capture resolution in all experiments.
    pub const P720: Resolution = Resolution::new(1280, 720);
    /// 960×540.
    pub const P540: Resolution = Resolution::new(960, 540);
    /// 640×360.
    pub const P360: Resolution = Resolution::new(640, 360);
    /// 480×270.
    pub const P270: Resolution = Resolution::new(480, 270);
    /// 320×180 — the floor of the adaptation ladder.
    pub const P180: Resolution = Resolution::new(320, 180);

    /// The downscale ladder, highest first. Resolution adaptation walks
    /// this list; it is ordered and contiguous so a single index
    /// identifies a rung.
    pub const LADDER: [Resolution; 6] = [
        Resolution::P1080,
        Resolution::P720,
        Resolution::P540,
        Resolution::P360,
        Resolution::P270,
        Resolution::P180,
    ];

    /// Creates a resolution.
    pub const fn new(width: u32, height: u32) -> Resolution {
        Resolution { width, height }
    }

    /// Total pixel count.
    pub const fn pixels(self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Pixel count relative to 720p (the R–D model's reference), e.g.
    /// 0.25 for 360p.
    pub fn scale_vs_720p(self) -> f64 {
        self.pixels() as f64 / Resolution::P720.pixels() as f64
    }

    /// Index of this resolution on [`Resolution::LADDER`], if it is a
    /// standard rung.
    pub fn ladder_index(self) -> Option<usize> {
        Resolution::LADDER.iter().position(|&r| r == self)
    }

    /// The next rung *down* the ladder (lower resolution), or `None` at
    /// the floor or for non-ladder resolutions.
    pub fn step_down(self) -> Option<Resolution> {
        let idx = self.ladder_index()?;
        Resolution::LADDER.get(idx + 1).copied()
    }

    /// The next rung *up* the ladder (higher resolution), or `None` at the
    /// top or for non-ladder resolutions.
    pub fn step_up(self) -> Option<Resolution> {
        let idx = self.ladder_index()?;
        idx.checked_sub(1).map(|i| Resolution::LADDER[i])
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_counts() {
        assert_eq!(Resolution::P720.pixels(), 921_600);
        assert_eq!(Resolution::P1080.pixels(), 2_073_600);
    }

    #[test]
    fn scale_vs_720p_reference() {
        assert!((Resolution::P720.scale_vs_720p() - 1.0).abs() < 1e-12);
        assert!((Resolution::P360.scale_vs_720p() - 0.25).abs() < 1e-12);
        assert!((Resolution::P1080.scale_vs_720p() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn ladder_is_strictly_descending() {
        for pair in Resolution::LADDER.windows(2) {
            assert!(pair[0].pixels() > pair[1].pixels());
        }
    }

    #[test]
    fn step_down_and_up_are_inverse() {
        for (i, &r) in Resolution::LADDER.iter().enumerate() {
            assert_eq!(r.ladder_index(), Some(i));
            if let Some(down) = r.step_down() {
                assert_eq!(down.step_up(), Some(r));
            }
        }
        assert_eq!(Resolution::P180.step_down(), None);
        assert_eq!(Resolution::P1080.step_up(), None);
    }

    #[test]
    fn non_ladder_resolution_has_no_steps() {
        let odd = Resolution::new(1000, 700);
        assert_eq!(odd.ladder_index(), None);
        assert_eq!(odd.step_down(), None);
        assert_eq!(odd.step_up(), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(Resolution::P720.to_string(), "1280x720");
    }
}
