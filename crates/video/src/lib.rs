//! # ravel-video — synthetic video content sources
//!
//! Encoder rate control reacts to the *complexity* of incoming frames,
//! not to their pixels: x264's ABR loop tracks per-frame SATD-style
//! complexity estimates, and frame sizes scale with them. To reproduce
//! the paper's encoder dynamics we therefore need realistic complexity
//! *processes*, not real video.
//!
//! A [`VideoSource`] emits [`RawFrame`]s at a fixed frame rate. Each
//! frame carries:
//!
//! * **spatial complexity** — texture/detail; drives intra (I-frame) bits,
//! * **temporal complexity** — motion/change since the previous frame;
//!   drives inter (P-frame) bits,
//! * a **scene-cut flag** — forces an I-frame and a complexity jump.
//!
//! Complexities are dimensionless with 1.0 ≈ "typical 720p talking-head
//! content"; the codec crate's R–D model converts them to bits. The
//! processes are mean-reverting AR(1) with seeded noise plus a Poisson
//! scene-cut process, matching the short-range correlation and occasional
//! discontinuities of real complexity traces.
//!
//! [`ContentProfile`] bundles the process parameters for the four content
//! classes the experiments use (talking head, screen share, gaming,
//! sports).

#![warn(missing_docs)]

pub mod profile;
pub mod resolution;
pub mod script;
pub mod source;

pub use profile::{ContentClass, ContentProfile};
pub use resolution::Resolution;
pub use script::{ScriptedSource, Segment};
pub use source::{FrameComplexity, RawFrame, VideoSource};
