//! Property test: corrupted feedback, sanitized by [`FeedbackValidator`],
//! never destabilizes the arena's new controllers.
//!
//! PR 9's zero-false-positive suite proved the validator accepts every
//! honest report and rejects the corruptor's garbage. This extends the
//! property to the consumers: whatever subset of a corrupted stream
//! survives the session's duplicate gate + validator, feeding it to
//! NADA and the BBR-style controller never produces a NaN, negative, or
//! out-of-bounds target.
//!
//! Two corruption sources are exercised: the real [`FeedbackCorruptor`]
//! (the seven seeded `CorruptKind` mutations, driven by a generated
//! schedule exactly as a session would), and a free-form field fuzzer
//! that scrambles sequence numbers, timestamps, and sizes beyond what
//! the corruptor emits.

use ravel_cc::{Bbr, BbrConfig, CongestionController, Nada, NadaConfig};
use ravel_net::{
    CorruptSchedule, CorruptSpec, FeedbackCorruptor, FeedbackReport, FeedbackValidator,
    PacketResult,
};
use ravel_sim::{Dur, Time};

const MIN_BPS: f64 = 150_000.0;
const MAX_BPS: f64 = 8e6;

/// An honest 10-packet, 100 ms report: contiguous sequence numbers,
/// positive sizes, arrivals inside `[send, generated_at]`.
fn honest_report(idx: u64, owd_ms: u64, lost_every: u64) -> FeedbackReport {
    let start_ms = idx * 100;
    let packets = (0..10u64)
        .map(|i| {
            let send = Time::from_millis(start_ms + i * 10);
            let lost = lost_every > 0 && i % lost_every == 0;
            PacketResult {
                seq: idx * 10 + i,
                send_time: send,
                arrival: (!lost).then(|| send + Dur::millis(owd_ms)),
                size_bytes: if lost { 0 } else { 1200 },
            }
        })
        .collect();
    FeedbackReport {
        report_seq: idx + 1,
        generated_at: Time::from_millis(start_ms + 100 + owd_ms),
        packets,
    }
}

/// The session's control-plane ingress, in miniature: duplicate/stale
/// gate, then the validator; only accepted reports reach the
/// controllers. Asserts the bounded-target property after every report.
fn feed_sanitized(reports: Vec<FeedbackReport>) -> Result<(), proptest::TestCaseError> {
    let mut validator = FeedbackValidator::new();
    let mut last_seq: Option<u64> = None;
    let mut nada = Nada::new(NadaConfig::new(1e6));
    let mut bbr = Bbr::new(BbrConfig::new(1e6));
    let mut accepted = 0u64;
    for report in &reports {
        let now = report.generated_at + Dur::millis(5);
        if last_seq.is_some_and(|last| report.report_seq <= last) {
            continue;
        }
        if validator.check(report, last_seq).is_err() {
            continue;
        }
        last_seq = Some(report.report_seq);
        accepted += 1;
        for (name, target) in [
            ("nada", nada.on_feedback(report, now)),
            ("bbr", bbr.on_feedback(report, now)),
        ] {
            proptest::prop_assert!(
                target.is_finite() && (MIN_BPS..=MAX_BPS).contains(&target),
                "{name}: target {target} out of bounds after report_seq {}",
                report.report_seq
            );
        }
    }
    // The gates must not starve the controllers outright: an honest
    // prefix always exists (corruption segments start after 15 % of
    // the session), so at least one report is always accepted.
    proptest::prop_assert!(accepted > 0, "sanitizer rejected the entire stream");
    Ok(())
}

proptest::proptest! {
    /// The real corruption stage: a `(seed, intensity)`-generated
    /// schedule mutating an honest 6 s stream, exactly as the session's
    /// reverse path would.
    #[test]
    fn corruptor_mutations_survive_sanitization(
        seed in 0u64..2_000,
        intensity_pct in 5u32..101,
        owd_ms in 1u64..80,
        lost_every in 0u64..5,
    ) {
        let session_len = Dur::secs(6);
        let spec = CorruptSpec::new(seed, intensity_pct as f64 / 100.0);
        let schedule = CorruptSchedule::generate(spec, session_len);
        let mut corruptor = FeedbackCorruptor::new(schedule, seed);
        let reports = (0..60u64)
            .map(|idx| {
                let mut r = honest_report(idx, owd_ms, lost_every);
                let now = Time::from_millis(idx * 100 + 100);
                corruptor.corrupt(&mut r, now);
                r
            })
            .collect();
        feed_sanitized(reports)?;
    }

    /// Free-form field fuzzing beyond the corruptor's seven kinds:
    /// scramble one field of every k-th report with generated values.
    /// The first five reports stay honest (mirroring the corruptor's
    /// clean lead-in) so the non-starvation assertion holds even when
    /// `every == 1` invalidates the rest of the stream.
    #[test]
    fn field_fuzzing_survives_sanitization(
        every in 1u64..6,
        field in 0u64..6,
        scramble in 0u64..u64::MAX,
        owd_ms in 1u64..80,
    ) {
        let reports = (0..60u64)
            .map(|idx| {
                let mut r = honest_report(idx, owd_ms, 0);
                if idx >= 5 && idx % every == 0 {
                    match field {
                        0 => r.report_seq = scramble,
                        1 => r.generated_at = Time::from_millis(scramble % (1 << 40)),
                        2 => {
                            if let Some(p) = r.packets.first_mut() {
                                p.seq = scramble;
                            }
                        }
                        3 => {
                            if let Some(p) = r.packets.first_mut() {
                                p.size_bytes = scramble;
                            }
                        }
                        4 => {
                            if let Some(p) = r.packets.first_mut() {
                                p.send_time = Time::from_millis(scramble % (1 << 40));
                            }
                        }
                        _ => {
                            if let Some(p) = r.packets.last_mut() {
                                p.arrival = Some(Time::from_millis(scramble % (1 << 40)));
                            }
                        }
                    }
                }
                r
            })
            .collect();
        feed_sanitized(reports)?;
    }
}
