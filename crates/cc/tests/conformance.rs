//! The shared controller conformance suite.
//!
//! One parameterized battery, run against every [`CongestionController`]
//! in the arena (GCC, NADA, BBR-style, loss-EMA AIMD). A controller that
//! joins the arena gets these correctness checks for free:
//!
//! 1. **Finite and bounded** — targets stay finite and inside
//!    `[min_rate, max_rate]` under arbitrary feedback (property test).
//! 2. **Ramp-up** — on a clean, uncongested link the target grows; the
//!    running maximum is non-decreasing and dips below it are bounded
//!    by the probe headroom (BBR legitimately retreats from a probe).
//! 3. **Convergence** — closed-loop against a fixed-capacity link, the
//!    late-session mean target lands within a tolerance band of
//!    capacity.
//! 4. **Step-drop reaction** — after a 4 → 1 Mbps capacity drop the
//!    target falls under 2 × the new capacity within a bounded number
//!    of feedback reports.
//! 5. **Blackout recovery** — after a 1 s total outage the target climbs
//!    back above 40 % of capacity within a generous deadline (the
//!    loss-EMA controller's smoothing makes it the slowest, by design).
//! 6. **Determinism** — the same feedback stream produces a bit-identical
//!    target sequence.
//!
//! The closed-loop tests drive a miniature fluid-queue link model: the
//! sender emits packets at the controller's target, a FIFO queue drains
//! at link capacity, queuing delay is queue/capacity, and packets whose
//! queuing delay would exceed the buffer bound are dropped. It is the
//! simplest plant that produces the three signals real controllers feed
//! on — delay gradients, loss, and delivery rate.

use ravel_cc::{
    Bbr, BbrConfig, CongestionController, Gcc, GccConfig, LossEma, LossEmaConfig, Nada, NadaConfig,
};
use ravel_net::{FeedbackReport, PacketResult};
use ravel_sim::Time;

/// Shared rate floor of the battery (matches every controller config).
const MIN_BPS: f64 = 150_000.0;
/// Shared rate ceiling of the battery.
const MAX_BPS: f64 = 8e6;
/// Shared starting rate.
const START_BPS: f64 = 1e6;

type Factory = fn() -> Box<dyn CongestionController>;

/// Every controller in the arena, by factory so tests can instantiate
/// fresh (or duplicate) instances.
fn arena() -> Vec<(&'static str, Factory)> {
    vec![
        ("gcc", || Box::new(Gcc::new(GccConfig::new(START_BPS)))),
        ("nada", || Box::new(Nada::new(NadaConfig::new(START_BPS)))),
        ("bbr", || Box::new(Bbr::new(BbrConfig::new(START_BPS)))),
        ("loss-ema", || {
            Box::new(LossEma::new(LossEmaConfig::new(START_BPS)))
        }),
    ]
}

/// Miniature closed-loop link: fluid FIFO queue draining at
/// `capacity_bps`, fixed propagation delay, tail drop beyond
/// `queue_cap_ms` of standing delay. One `round` is 100 ms of sending
/// at the controller's current target, folded into one feedback report.
struct TestLink {
    capacity_bps: f64,
    base_owd_ms: f64,
    queue_cap_ms: f64,
    queue_bits: f64,
    seq: u64,
    report_seq: u64,
    now_ms: f64,
}

const ROUND_MS: f64 = 100.0;
const PKT_BYTES: u64 = 1250;

impl TestLink {
    fn new(capacity_bps: f64) -> TestLink {
        TestLink {
            capacity_bps,
            base_owd_ms: 20.0,
            queue_cap_ms: 400.0,
            queue_bits: 0.0,
            seq: 0,
            report_seq: 0,
            now_ms: 0.0,
        }
    }

    fn t(ms: f64) -> Time {
        Time::from_micros((ms * 1000.0) as u64)
    }

    /// Runs one 100 ms round of sending at `rate_bps`; returns the
    /// receiver's feedback report. `blackout` loses every packet.
    fn round(&mut self, rate_bps: f64, blackout: bool) -> FeedbackReport {
        let pkt_bits = (PKT_BYTES * 8) as f64;
        let n = ((rate_bps * ROUND_MS / 1000.0 / pkt_bits).round() as u64).clamp(1, 200);
        let gap_ms = ROUND_MS / n as f64;
        let mut packets = Vec::with_capacity(n as usize);
        for i in 0..n {
            let send_ms = self.now_ms + i as f64 * gap_ms;
            // Drain since the previous send, then enqueue this packet.
            self.queue_bits = (self.queue_bits - self.capacity_bps * gap_ms / 1000.0).max(0.0);
            self.queue_bits += pkt_bits;
            let qdelay_ms = self.queue_bits / self.capacity_bps * 1000.0;
            let dropped = blackout || qdelay_ms > self.queue_cap_ms;
            if dropped {
                // Tail drop: the packet never occupies the queue.
                self.queue_bits -= pkt_bits;
            }
            packets.push(PacketResult {
                seq: self.seq,
                send_time: TestLink::t(send_ms),
                arrival: (!dropped).then(|| TestLink::t(send_ms + self.base_owd_ms + qdelay_ms)),
                size_bytes: if dropped { 0 } else { PKT_BYTES },
            });
            self.seq += 1;
        }
        self.now_ms += ROUND_MS;
        self.report_seq += 1;
        FeedbackReport {
            report_seq: self.report_seq,
            generated_at: TestLink::t(self.now_ms + self.base_owd_ms + self.queue_cap_ms),
            packets,
        }
    }

    /// Drives `cc` for `rounds` feedback rounds; returns the target
    /// after each round.
    fn drive(&mut self, cc: &mut dyn CongestionController, rounds: usize) -> Vec<f64> {
        let mut targets = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let report = self.round(cc.target_bps(), false);
            let now = TestLink::t(self.now_ms);
            targets.push(cc.on_feedback(&report, now));
        }
        targets
    }

    /// Like [`TestLink::drive`], but every packet is lost.
    fn drive_blackout(&mut self, cc: &mut dyn CongestionController, rounds: usize) -> Vec<f64> {
        let mut targets = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let report = self.round(cc.target_bps(), true);
            let now = TestLink::t(self.now_ms);
            targets.push(cc.on_feedback(&report, now));
        }
        targets
    }
}

fn assert_bounded(name: &str, target: f64) {
    assert!(target.is_finite(), "{name}: non-finite target {target}");
    assert!(
        (MIN_BPS..=MAX_BPS).contains(&target),
        "{name}: target {target} outside [{MIN_BPS}, {MAX_BPS}]"
    );
}

// ---------------------------------------------------------------------
// 1. Finite and bounded under arbitrary feedback.
// ---------------------------------------------------------------------

/// Builds one feedback report from a fuzzed round descriptor while
/// keeping sequence numbers and send times monotone across reports.
fn fuzz_report(
    seq: &mut u64,
    t_ms: &mut u64,
    n: u64,
    gap_ms: u64,
    owd_ms: u64,
    lost_every: u64,
    size: u64,
) -> FeedbackReport {
    let packets = (0..n)
        .map(|i| {
            let send = Time::from_millis(*t_ms + i * gap_ms);
            let lost = lost_every > 0 && i % lost_every == 0;
            PacketResult {
                seq: *seq + i,
                send_time: send,
                arrival: (!lost).then(|| send + ravel_sim::Dur::millis(owd_ms)),
                size_bytes: if lost { 0 } else { size },
            }
        })
        .collect();
    *seq += n;
    *t_ms += n.max(1) * gap_ms;
    FeedbackReport {
        report_seq: *seq,
        generated_at: Time::from_millis(*t_ms + owd_ms),
        packets,
    }
}

proptest::proptest! {
    /// Under any feedback stream — including empty reports, 100 % loss,
    /// wild delay swings and absurd packet sizes — every controller's
    /// target stays finite and inside `[MIN_BPS, MAX_BPS]`.
    #[test]
    fn targets_stay_finite_and_bounded_under_arbitrary_feedback(
        rounds in proptest::collection::vec(
            ((0u64..25, 1u64..40), (0u64..400, 0u64..6), 1u64..30_000),
            1..40,
        )
    ) {
        for (name, make) in arena() {
            let mut cc = make();
            let (mut seq, mut t_ms) = (0u64, 0u64);
            for &((n, gap_ms), (owd_ms, lost_every), size) in &rounds {
                let report = fuzz_report(
                    &mut seq, &mut t_ms, n, gap_ms, owd_ms, lost_every, size,
                );
                let now = Time::from_millis(t_ms + owd_ms + 1);
                let target = cc.on_feedback(&report, now);
                proptest::prop_assert!(
                    target.is_finite() && (MIN_BPS..=MAX_BPS).contains(&target),
                    "{name}: target {target} out of bounds"
                );
                proptest::prop_assert_eq!(target, cc.target_bps());
            }
        }
    }
}

// ---------------------------------------------------------------------
// 2. Ramp-up on a clean link.
// ---------------------------------------------------------------------

/// Dips below the running maximum are bounded by the probe headroom:
/// a BBR-style controller legitimately retreats from a 1.25× probe to
/// cruise (1/1.25 = 0.8 of the peak); anything deeper on a clean link
/// is a regression. Monotone controllers never dip at all.
const RAMP_DIP_FLOOR: f64 = 0.74;

#[test]
fn ramp_up_grows_on_a_clean_link() {
    for (name, make) in arena() {
        let mut cc = make();
        // Capacity above MAX_BPS: the link never pushes back, so every
        // decrease would be self-inflicted.
        let mut link = TestLink::new(12e6);
        let targets = link.drive(cc.as_mut(), 200);
        let mut running_max = START_BPS;
        for (i, &t) in targets.iter().enumerate() {
            assert_bounded(name, t);
            assert!(
                t >= RAMP_DIP_FLOOR * running_max,
                "{name}: round {i} target {t} fell below {RAMP_DIP_FLOOR} of peak {running_max}"
            );
            running_max = running_max.max(t);
        }
        let last = *targets.last().unwrap();
        assert!(
            last >= 3.0 * START_BPS,
            "{name}: no meaningful ramp-up in 20 s (ended at {last})"
        );
    }
}

// ---------------------------------------------------------------------
// 3. Convergence to a tolerance band of link capacity.
// ---------------------------------------------------------------------

#[test]
fn converges_to_a_band_around_capacity() {
    const CAPACITY: f64 = 3e6;
    for (name, make) in arena() {
        let mut cc = make();
        let mut link = TestLink::new(CAPACITY);
        let targets = link.drive(cc.as_mut(), 300);
        let tail = &targets[250..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (0.5 * CAPACITY..=1.5 * CAPACITY).contains(&mean),
            "{name}: late-session mean target {mean} outside [{}, {}]",
            0.5 * CAPACITY,
            1.5 * CAPACITY
        );
    }
}

// ---------------------------------------------------------------------
// 4. Reaction to a step drop.
// ---------------------------------------------------------------------

#[test]
fn reacts_to_a_step_drop_within_bounded_reports() {
    const PRE: f64 = 4e6;
    const POST: f64 = 1e6;
    // GCC's overuse staircase and loss-EMA's per-second intervals are
    // the slow end; 80 reports (8 s) bounds both with margin.
    const DEADLINE_ROUNDS: usize = 80;
    for (name, make) in arena() {
        let mut cc = make();
        let mut link = TestLink::new(PRE);
        link.drive(cc.as_mut(), 100);
        link.capacity_bps = POST;
        let targets = link.drive(cc.as_mut(), DEADLINE_ROUNDS);
        let reacted = targets.iter().position(|&t| t <= 2.0 * POST);
        assert!(
            reacted.is_some(),
            "{name}: target never fell under {} within {DEADLINE_ROUNDS} reports of a {}→{} drop \
             (ended at {})",
            2.0 * POST,
            PRE,
            POST,
            targets.last().unwrap()
        );
    }
}

// ---------------------------------------------------------------------
// 5. Recovery after a blackout.
// ---------------------------------------------------------------------

#[test]
fn recovers_after_a_blackout() {
    const CAPACITY: f64 = 1e6;
    // Generous by design: the loss-EMA controller must first decay its
    // smoothed estimate below the probe threshold (~10 s) and then
    // compound 10 %/s increases from wherever the backoffs left it.
    const RECOVERY_ROUNDS: usize = 300;
    for (name, make) in arena() {
        let mut cc = make();
        let mut link = TestLink::new(CAPACITY);
        link.drive(cc.as_mut(), 100);
        // 1 s total outage.
        let during = link.drive_blackout(cc.as_mut(), 10);
        for &t in &during {
            assert_bounded(name, t);
        }
        let after = link.drive(cc.as_mut(), RECOVERY_ROUNDS);
        let recovered = after.iter().position(|&t| t >= 0.4 * CAPACITY);
        assert!(
            recovered.is_some(),
            "{name}: target never recovered to {} within {RECOVERY_ROUNDS} reports after a \
             blackout (ended at {})",
            0.4 * CAPACITY,
            after.last().unwrap()
        );
    }
}

// ---------------------------------------------------------------------
// 6. Determinism: same feedback stream ⇒ bit-identical targets.
// ---------------------------------------------------------------------

#[test]
fn same_feedback_stream_is_bit_identical() {
    for (name, make) in arena() {
        let run = |mut cc: Box<dyn CongestionController>| -> Vec<u64> {
            let mut link = TestLink::new(2.5e6);
            let mut bits = Vec::new();
            // A deliberately eventful closed-loop stream: converge,
            // blackout, recover, then a capacity drop.
            bits.extend(link.drive(cc.as_mut(), 80).iter().map(|t| t.to_bits()));
            bits.extend(
                link.drive_blackout(cc.as_mut(), 5)
                    .iter()
                    .map(|t| t.to_bits()),
            );
            bits.extend(link.drive(cc.as_mut(), 80).iter().map(|t| t.to_bits()));
            link.capacity_bps = 800_000.0;
            bits.extend(link.drive(cc.as_mut(), 80).iter().map(|t| t.to_bits()));
            bits
        };
        let (a, b) = (run(make()), run(make()));
        assert_eq!(a, b, "{name}: target sequence not bit-identical");
    }
}

// ---------------------------------------------------------------------
// Arena hygiene: names and decision reasons.
// ---------------------------------------------------------------------

#[test]
fn names_and_decision_reasons_are_stable() {
    let mut seen = std::collections::BTreeSet::new();
    for (name, make) in arena() {
        let cc = make();
        assert_eq!(cc.name(), name, "factory/controller name mismatch");
        assert!(seen.insert(cc.name()), "duplicate controller name {name}");
        assert!(!cc.decision_reason().is_empty());
    }
}
