//! Differential test: [`NaiveAimd`] vs the loss-EMA AIMD on identical
//! feedback streams.
//!
//! `NaiveAimd` predates the arena and stays in the E8 baseline lineup;
//! this test documents — rather than silently supersedes — its two
//! known deficiencies, by pinning exactly where the production-shaped
//! [`LossEma`] loop diverges from it on the same inputs:
//!
//! 1. **Over-reaction**: NaiveAimd halves its target on *any* lost
//!    packet in a report. One stray drop in an otherwise clean stream
//!    costs it 50 % of its rate; the loss-EMA loop's interval
//!    accumulation + smoothing moves its estimate by well under the
//!    backoff threshold, so it does not decrease at all.
//! 2. **Freefall under sustained loss**: during a lossy burst NaiveAimd
//!    compounds a halving per 100 ms report (≈ 2¹⁰ per second) and
//!    bottoms out at the rate floor almost immediately, while the
//!    loss-EMA loop decreases once per stats interval and lands at a
//!    usable rate.

use ravel_cc::{CongestionController, LossEma, LossEmaConfig, NaiveAimd};
use ravel_net::{FeedbackReport, PacketResult};
use ravel_sim::{Dur, Time};

const START_BPS: f64 = 2e6;
const MIN_BPS: f64 = 150_000.0;
const MAX_BPS: f64 = 8e6;

/// A 10-packet, 100 ms report starting at `start_ms` with the first
/// `lost` packets dropped.
fn report(start_ms: u64, lost: u64) -> FeedbackReport {
    let packets = (0..10u64)
        .map(|i| {
            let send = Time::from_millis(start_ms + i * 10);
            PacketResult {
                seq: start_ms / 10 + i,
                send_time: send,
                arrival: (i >= lost).then(|| send + Dur::millis(20)),
                size_bytes: if i >= lost { 1200 } else { 0 },
            }
        })
        .collect();
    FeedbackReport {
        report_seq: start_ms / 100,
        generated_at: Time::from_millis(start_ms + 130),
        packets,
    }
}

/// Feeds the identical stream to both controllers; returns the paired
/// target trajectories. `losses[i]` is the lost-packet count of report
/// `i`.
fn run_both(losses: &[u64]) -> (Vec<f64>, Vec<f64>) {
    let mut naive = NaiveAimd::new(START_BPS, MIN_BPS, MAX_BPS);
    let mut ema = LossEma::new(LossEmaConfig::new(START_BPS));
    let mut naive_targets = Vec::new();
    let mut ema_targets = Vec::new();
    for (i, &lost) in losses.iter().enumerate() {
        let r = report(i as u64 * 100, lost);
        let now = Time::from_millis(i as u64 * 100 + 100);
        naive_targets.push(naive.on_feedback(&r, now));
        ema_targets.push(ema.on_feedback(&r, now));
    }
    (naive_targets, ema_targets)
}

#[test]
fn one_stray_loss_halves_naive_but_not_loss_ema() {
    // 30 clean reports with a single lost packet in report 10.
    let mut losses = vec![0u64; 30];
    losses[10] = 1;
    let (naive, ema) = run_both(&losses);

    // Divergence point: report 10. NaiveAimd halves on the spot...
    assert_eq!(
        naive[10],
        naive[9] / 2.0,
        "naive did not halve on the stray loss"
    );
    // ...while the loss-EMA loop never decreases anywhere in the
    // stream: the interval loss rate is 1 % and the smoothed estimate
    // peaks at 0.3 % — an order of magnitude under its 10 % backoff
    // threshold.
    for w in ema.windows(2) {
        assert!(w[1] >= w[0], "loss-ema decreased on a stray loss: {w:?}");
    }
    // The cost of the over-reaction, in rate terms: NaiveAimd's
    // trajectory minimum is half its pre-loss rate; the loss-EMA loop's
    // minimum is its starting rate.
    let naive_min = naive.iter().cloned().fold(f64::INFINITY, f64::min);
    let ema_min = ema.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(naive_min <= 0.51 * naive[9]);
    assert!(ema_min >= START_BPS);
}

#[test]
fn sustained_loss_floors_naive_but_leaves_loss_ema_usable() {
    // 2 s clean, then 3 s of 30 % loss, then 2 s clean.
    let mut losses = vec![0u64; 20];
    losses.extend(std::iter::repeat_n(3, 30));
    losses.extend(std::iter::repeat_n(0, 20));
    let (naive, ema) = run_both(&losses);

    // Freefall: halving per lossy report pins NaiveAimd at the floor
    // within the burst's first second (reports 20..30).
    assert_eq!(naive[29], MIN_BPS, "naive never bottomed out");
    // The loss-EMA loop reacts on its 1 s interval clock instead: it
    // backs off during the burst but stays well above the floor — it
    // sees a smoothed 30 % estimate, not 30 consecutive disasters.
    let ema_min = ema.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        ema_min > 2.0 * MIN_BPS,
        "loss-ema collapsed to {ema_min} like the naive baseline"
    );
    assert!(
        ema_min < START_BPS,
        "loss-ema never backed off under sustained loss"
    );
    // Both controllers end the stream recovering (non-decreasing tail)
    // once the loss clears.
    assert!(naive.last().unwrap() > &naive[29]);
    assert!(ema.last().unwrap() >= &ema_min);
}

#[test]
fn identical_streams_yield_identical_divergence_every_time() {
    // The divergence itself is deterministic: re-running the same
    // stream reproduces both trajectories bit for bit.
    let mut losses = vec![0u64; 15];
    losses[5] = 2;
    losses[11] = 4;
    let (n1, e1) = run_both(&losses);
    let (n2, e2) = run_both(&losses);
    let bits = |v: &[f64]| v.iter().map(|t| t.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&n1), bits(&n2));
    assert_eq!(bits(&e1), bits(&e2));
}
