//! Loss-EMA AIMD congestion control.
//!
//! The production-representative low bar: the rate loop used by beam's
//! `abr.rs` (SNIPPETS.md §3). No delay model at all — the controller
//! accumulates sent/lost counts over a fixed stats interval, smooths
//! the interval loss rate with an exponential moving average
//! (`loss_ema ← 0.7·loss_ema + 0.3·loss_rate`), and applies classic
//! AIMD thresholds to the smoothed value:
//!
//! * `loss_ema > HIGH` → multiplicative decrease,
//! * `loss_ema < LOW` → gentle multiplicative probe upward,
//! * otherwise → hold.
//!
//! Compared to [`NaiveAimd`](crate::NaiveAimd) — which halves on *any*
//! loss in a single report — the EMA plus interval accumulation means
//! one stray drop moves the estimate by at most `0.3 / interval-packets`
//! and never crosses the decrease threshold. The differential test in
//! `crates/cc/tests/differential.rs` pins that divergence.

use ravel_net::FeedbackReport;
use ravel_sim::{Dur, Time};

use crate::CongestionController;

/// Stats interval: decisions fire once per second, as in beam.
const INTERVAL: Dur = Dur::secs(1);
/// EMA weight kept from the previous estimate.
const EMA_KEEP: f64 = 0.7;
/// EMA weight of the fresh interval loss rate.
const EMA_NEW: f64 = 0.3;
/// Smoothed loss above this → multiplicative decrease.
const HIGH_LOSS: f64 = 0.10;
/// Smoothed loss below this → probe upward.
const LOW_LOSS: f64 = 0.02;
/// Multiplicative decrease factor.
const DECREASE: f64 = 0.7;
/// Multiplicative probe factor (beam ramps ~10% per interval).
const INCREASE: f64 = 1.10;

/// Configuration for [`LossEma`].
#[derive(Debug, Clone, Copy)]
pub struct LossEmaConfig {
    /// Initial target rate.
    pub start_bps: f64,
    /// Floor.
    pub min_bps: f64,
    /// Ceiling.
    pub max_bps: f64,
}

impl LossEmaConfig {
    /// Config with the repo-standard 150 kbps floor and 8 Mbps ceiling.
    pub fn new(start_bps: f64) -> LossEmaConfig {
        LossEmaConfig {
            start_bps,
            min_bps: 150_000.0,
            max_bps: 8e6,
        }
    }
}

/// Loss-EMA AIMD controller.
#[derive(Debug, Clone)]
pub struct LossEma {
    min_bps: f64,
    max_bps: f64,
    target_bps: f64,
    /// Smoothed loss-rate estimate.
    loss_ema: f64,
    /// Packets covered by reports since the interval started.
    interval_sent: u64,
    /// Of those, how many were lost.
    interval_lost: u64,
    interval_start: Option<Time>,
    reason: &'static str,
}

impl LossEma {
    /// Creates a loss-EMA controller from `cfg`.
    pub fn new(cfg: LossEmaConfig) -> LossEma {
        assert!(
            cfg.min_bps > 0.0 && cfg.min_bps <= cfg.max_bps,
            "bad rate bounds"
        );
        LossEma {
            min_bps: cfg.min_bps,
            max_bps: cfg.max_bps,
            target_bps: cfg.start_bps.clamp(cfg.min_bps, cfg.max_bps),
            loss_ema: 0.0,
            interval_sent: 0,
            interval_lost: 0,
            interval_start: None,
            reason: "loss-ema-hold",
        }
    }

    /// The current smoothed loss estimate (for tests/observability).
    pub fn loss_ema(&self) -> f64 {
        self.loss_ema
    }
}

impl CongestionController for LossEma {
    fn on_feedback(&mut self, report: &FeedbackReport, now: Time) -> f64 {
        self.interval_sent += report.packets.len() as u64;
        self.interval_lost += report.lost_count() as u64;
        let start = *self.interval_start.get_or_insert(now);
        if now.saturating_since(start) < INTERVAL {
            return self.target_bps;
        }

        // Interval closed: fold the interval loss rate into the EMA and
        // apply the AIMD thresholds.
        let loss_rate = if self.interval_sent == 0 {
            0.0
        } else {
            self.interval_lost as f64 / self.interval_sent as f64
        };
        self.loss_ema = EMA_KEEP * self.loss_ema + EMA_NEW * loss_rate;
        if self.loss_ema > HIGH_LOSS {
            self.target_bps *= DECREASE;
            self.reason = "loss-ema-backoff";
        } else if self.loss_ema < LOW_LOSS {
            self.target_bps *= INCREASE;
            self.reason = "loss-ema-probe";
        } else {
            self.reason = "loss-ema-hold";
        }
        self.target_bps = self.target_bps.clamp(self.min_bps, self.max_bps);
        self.interval_sent = 0;
        self.interval_lost = 0;
        self.interval_start = Some(now);
        self.target_bps
    }

    fn target_bps(&self) -> f64 {
        self.target_bps
    }

    fn name(&self) -> &'static str {
        "loss-ema"
    }

    fn decision_reason(&self) -> &'static str {
        self.reason
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ravel_net::PacketResult;

    /// A 10-packet report at `start_ms` with the first `lost` packets
    /// never arriving.
    fn report(first_seq: u64, start_ms: u64, lost: u64) -> FeedbackReport {
        let packets = (0..10u64)
            .map(|i| {
                let send = Time::from_millis(start_ms + i * 10);
                PacketResult {
                    seq: first_seq + i,
                    send_time: send,
                    arrival: (i >= lost).then(|| send + Dur::millis(20)),
                    size_bytes: if i >= lost { 1200 } else { 0 },
                }
            })
            .collect();
        FeedbackReport {
            report_seq: first_seq / 10,
            generated_at: Time::from_millis(start_ms + 130),
            packets,
        }
    }

    /// Runs `secs` seconds of reports (10/s) with `lost` losses each.
    fn run(cc: &mut LossEma, from_ms: u64, secs: u64, lost: u64) -> f64 {
        let mut target = cc.target_bps();
        for i in 0..secs * 10 {
            let ms = from_ms + i * 100;
            target = cc.on_feedback(&report(ms / 10, ms, lost), Time::from_millis(ms + 100));
        }
        target
    }

    #[test]
    fn decisions_fire_once_per_interval() {
        let mut cc = LossEma::new(LossEmaConfig::new(1e6));
        // The interval clock starts at the first report; the ten
        // reports within that first second change nothing.
        for i in 0..10u64 {
            let t = cc.on_feedback(
                &report(i * 10, i * 100, 0),
                Time::from_millis(i * 100 + 100),
            );
            assert_eq!(t, 1e6, "changed mid-interval at report {i}");
        }
        let t = cc.on_feedback(&report(100, 1000, 0), Time::from_millis(1100));
        assert!(t > 1e6, "interval close did not probe: {t}");
    }

    #[test]
    fn clean_link_probes_upward() {
        let mut cc = LossEma::new(LossEmaConfig::new(1e6));
        let target = run(&mut cc, 0, 20, 0);
        // 10%/s compounding for 20 s from 1 Mbps ≈ 6.7 Mbps.
        assert!(target > 5e6, "no ramp: {target}");
        assert_eq!(cc.decision_reason(), "loss-ema-probe");
    }

    #[test]
    fn sustained_loss_backs_off_smoothly() {
        let mut cc = LossEma::new(LossEmaConfig::new(4e6));
        // 30% loss for 5 s: EMA crosses HIGH after two intervals, then
        // multiplicative decrease — but never the per-report freefall
        // NaiveAimd exhibits.
        let target = run(&mut cc, 0, 5, 3);
        assert!(target < 4e6 * 0.7, "no backoff: {target}");
        assert!(
            target > 150_000.0,
            "over-reacted to smoothed loss: {target}"
        );
        assert_eq!(cc.decision_reason(), "loss-ema-backoff");
    }

    #[test]
    fn single_stray_loss_never_triggers_backoff() {
        let mut cc = LossEma::new(LossEmaConfig::new(1e6));
        run(&mut cc, 0, 2, 0);
        let before = cc.target_bps();
        // Nine clean reports, then one carrying a single lost packet:
        // the interval loss rate is 1%, the EMA lands at 0.003 — far
        // below both thresholds. NaiveAimd would have halved here.
        for i in 0..9u64 {
            let ms = 2000 + i * 100;
            cc.on_feedback(&report(ms / 10, ms, 0), Time::from_millis(ms + 100));
        }
        cc.on_feedback(&report(290, 2900, 1), Time::from_millis(3000));
        let target = run(&mut cc, 3000, 2, 0);
        assert!(
            target >= before,
            "stray loss caused a decrease: {target} < {before}"
        );
        assert!(cc.loss_ema() < LOW_LOSS);
    }

    #[test]
    fn rate_stays_within_bounds() {
        let mut cc = LossEma::new(LossEmaConfig::new(7e6));
        assert_eq!(run(&mut cc, 0, 30, 0), 8e6);
        let mut cc = LossEma::new(LossEmaConfig::new(200_000.0));
        assert_eq!(run(&mut cc, 0, 30, 10), 150_000.0);
    }
}
