//! Acked-bitrate estimation over a sliding window.
//!
//! GCC's multiplicative decrease is anchored to the *measured delivered*
//! rate ("acked bitrate"), not the configured target — after a capacity
//! drop, the delivered rate is the best available estimate of the new
//! capacity. This estimator mirrors libwebrtc's windowed bitrate
//! estimator: bytes arriving within the trailing window, divided by the
//! window span.

use std::collections::VecDeque;

use ravel_sim::{Dur, Time};

/// Sliding-window delivered-throughput estimator.
#[derive(Debug, Clone)]
pub struct ThroughputEstimator {
    window: Dur,
    samples: VecDeque<(Time, u64)>,
    bytes_in_window: u64,
}

impl ThroughputEstimator {
    /// Creates an estimator with the given trailing window (libwebrtc
    /// uses 500 ms–1 s).
    pub fn new(window: Dur) -> ThroughputEstimator {
        assert!(!window.is_zero(), "zero window");
        ThroughputEstimator {
            window,
            samples: VecDeque::new(),
            bytes_in_window: 0,
        }
    }

    /// Records `bytes` arriving at `arrival`.
    pub fn on_bytes(&mut self, bytes: u64, arrival: Time) {
        self.samples.push_back((arrival, bytes));
        self.bytes_in_window += bytes;
        self.evict(arrival);
    }

    fn evict(&mut self, now: Time) {
        let cutoff_time =
            Time::from_micros(now.as_micros().saturating_sub(self.window.as_micros()));
        while let Some(&(t, b)) = self.samples.front() {
            if t < cutoff_time {
                self.bytes_in_window -= b;
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Estimated delivered rate in bits/second as of `now`, or `None`
    /// with fewer than two samples in the window.
    pub fn rate_bps(&mut self, now: Time) -> Option<f64> {
        self.evict(now);
        if self.samples.len() < 2 {
            return None;
        }
        let span = now
            .saturating_since(self.samples.front().expect("non-empty").0)
            .max(Dur::millis(1));
        Some(self.bytes_in_window as f64 * 8.0 / span.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_stream_rate() {
        let mut est = ThroughputEstimator::new(Dur::millis(500));
        // 1250 bytes every 10 ms = 1 Mbps.
        for i in 0..100u64 {
            est.on_bytes(1250, Time::from_millis(i * 10));
        }
        let rate = est.rate_bps(Time::from_millis(1000)).unwrap();
        assert!((rate - 1e6).abs() / 1e6 < 0.1, "rate {rate}");
    }

    #[test]
    fn rate_follows_capacity_drop() {
        let mut est = ThroughputEstimator::new(Dur::millis(500));
        for i in 0..50u64 {
            est.on_bytes(1250, Time::from_millis(i * 10)); // 1 Mbps
        }
        // Rate halves: packets arrive every 20 ms.
        for i in 0..50u64 {
            est.on_bytes(1250, Time::from_millis(500 + i * 20));
        }
        let rate = est.rate_bps(Time::from_millis(1500)).unwrap();
        assert!((rate - 0.5e6).abs() / 0.5e6 < 0.15, "rate {rate}");
    }

    #[test]
    fn needs_two_samples() {
        let mut est = ThroughputEstimator::new(Dur::millis(500));
        assert!(est.rate_bps(Time::from_millis(100)).is_none());
        est.on_bytes(1250, Time::from_millis(100));
        assert!(est.rate_bps(Time::from_millis(100)).is_none());
        est.on_bytes(1250, Time::from_millis(110));
        assert!(est.rate_bps(Time::from_millis(120)).is_some());
    }

    #[test]
    fn stale_samples_evicted() {
        let mut est = ThroughputEstimator::new(Dur::millis(500));
        for i in 0..10u64 {
            est.on_bytes(1250, Time::from_millis(i * 10));
        }
        // Long silence: everything ages out.
        assert!(est.rate_bps(Time::from_secs(10)).is_none());
    }

    #[test]
    #[should_panic(expected = "zero window")]
    fn zero_window_panics() {
        ThroughputEstimator::new(Dur::ZERO);
    }
}
