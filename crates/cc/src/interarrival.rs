//! Packet grouping and inter-group delay deltas (libwebrtc
//! `InterArrival`).
//!
//! GCC does not estimate delay per packet — bursts sent back-to-back by
//! the pacer would swamp the signal. Packets are grouped into *send
//! bursts* (all packets whose send times fall within a 5 ms window), and
//! the delay-variation signal is computed between consecutive groups:
//!
//! ```text
//! d(i) = (arrival_i − arrival_{i−1}) − (send_i − send_{i−1})
//! ```
//!
//! A positive `d` means the path is delivering slower than the sender is
//! sending — the queue is growing.

use ravel_sim::{Dur, Time};

/// One completed group-pair measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketGroupDelta {
    /// Arrival-time delta minus send-time delta, in milliseconds
    /// (positive = queue growing).
    pub delay_variation_ms: f64,
    /// Arrival time of the newer group (x-axis for the trendline).
    pub arrival: Time,
    /// Send-time delta between the groups.
    pub send_delta: Dur,
}

#[derive(Debug, Clone, Copy)]
struct Group {
    first_send: Time,
    last_send: Time,
    last_arrival: Time,
}

/// Groups packets into send bursts and emits inter-group deltas.
#[derive(Debug, Clone)]
pub struct InterArrival {
    burst_window: Dur,
    current: Option<Group>,
    previous: Option<Group>,
}

impl Default for InterArrival {
    fn default() -> Self {
        Self::new(Dur::millis(5))
    }
}

impl InterArrival {
    /// Creates a grouper with the given burst window (libwebrtc: 5 ms).
    pub fn new(burst_window: Dur) -> InterArrival {
        InterArrival {
            burst_window,
            current: None,
            previous: None,
        }
    }

    /// Feeds one received packet (send and arrival timestamps must be
    /// non-decreasing — guaranteed by the FIFO link). Returns a delta
    /// when the packet starts a new group and a previous pair exists.
    pub fn on_packet(&mut self, send_time: Time, arrival: Time) -> Option<PacketGroupDelta> {
        match self.current {
            None => {
                self.current = Some(Group {
                    first_send: send_time,
                    last_send: send_time,
                    last_arrival: arrival,
                });
                None
            }
            Some(ref mut g) if send_time.saturating_since(g.first_send) <= self.burst_window => {
                // Same burst: extend the group.
                g.last_send = g.last_send.max(send_time);
                g.last_arrival = g.last_arrival.max(arrival);
                None
            }
            Some(g) => {
                // New group begins; emit a delta vs. the previous group.
                let delta = self.previous.map(|prev| {
                    let arrival_delta = g
                        .last_arrival
                        .saturating_since(prev.last_arrival)
                        .as_secs_f64();
                    let send_delta_d = g.last_send.saturating_since(prev.last_send);
                    let send_delta = send_delta_d.as_secs_f64();
                    PacketGroupDelta {
                        delay_variation_ms: (arrival_delta - send_delta) * 1e3,
                        arrival: g.last_arrival,
                        send_delta: send_delta_d,
                    }
                });
                self.previous = Some(g);
                self.current = Some(Group {
                    first_send: send_time,
                    last_send: send_time,
                    last_arrival: arrival,
                });
                delta
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Time {
        Time::from_millis(v)
    }

    #[test]
    fn needs_three_groups_for_first_delta() {
        let mut ia = InterArrival::default();
        assert!(ia.on_packet(ms(0), ms(20)).is_none()); // group 1
        assert!(ia.on_packet(ms(10), ms(30)).is_none()); // group 2 starts
                                                         // Group 3 starts: emits delta between groups 1 and 2.
        let d = ia.on_packet(ms(20), ms(40)).unwrap();
        assert!((d.delay_variation_ms - 0.0).abs() < 1e-9);
    }

    #[test]
    fn growing_queue_is_positive_variation() {
        let mut ia = InterArrival::default();
        // Sent every 10 ms, arriving with increasing spacing (12 ms):
        // queue grows 2 ms per group.
        ia.on_packet(ms(0), ms(20));
        ia.on_packet(ms(10), ms(32));
        let d = ia.on_packet(ms(20), ms(44)).unwrap();
        assert!((d.delay_variation_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn draining_queue_is_negative_variation() {
        let mut ia = InterArrival::default();
        ia.on_packet(ms(0), ms(30));
        ia.on_packet(ms(10), ms(37));
        let d = ia.on_packet(ms(20), ms(44)).unwrap();
        assert!((d.delay_variation_ms + 3.0).abs() < 1e-9);
    }

    #[test]
    fn burst_packets_group_together() {
        let mut ia = InterArrival::default();
        // Three packets within 5 ms are one group.
        ia.on_packet(ms(0), ms(20));
        ia.on_packet(Time::from_micros(2_000), ms(21));
        ia.on_packet(Time::from_micros(4_000), ms(22));
        // Next group.
        assert!(ia.on_packet(ms(10), ms(30)).is_none());
        // Third group: delta between (group ending at 22ms arrival) and
        // (group at 30ms).
        let d = ia.on_packet(ms(20), ms(40)).unwrap();
        // arrival delta 8 ms (22→30), send delta 6 ms (4→10).
        assert!((d.delay_variation_ms - 2.0).abs() < 1e-9, "{d:?}");
    }

    proptest::proptest! {
        /// With matched send/arrival spacing, every emitted delta is zero
        /// regardless of the (positive) spacing pattern.
        #[test]
        fn matched_spacing_zero_delta(gaps in proptest::collection::vec(6u64..50, 3..60)) {
            let mut ia = InterArrival::default();
            let mut send = 0u64;
            for &g in &gaps {
                send += g;
                if let Some(d) = ia.on_packet(ms(send), ms(send + 20)) {
                    proptest::prop_assert!(d.delay_variation_ms.abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn deltas_flow_continuously() {
        let mut ia = InterArrival::default();
        let mut count = 0;
        for i in 0..100u64 {
            if ia.on_packet(ms(i * 10), ms(i * 10 + 20)).is_some() {
                count += 1;
            }
        }
        assert_eq!(count, 98);
    }
}
