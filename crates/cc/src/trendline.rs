//! Trendline delay-gradient estimation and overuse detection
//! (libwebrtc `TrendlineEstimator` + adaptive threshold).
//!
//! The estimator keeps a short window of (time, smoothed accumulated
//! delay) points and fits a line; the slope — scaled by the number of
//! deltas and a gain — is compared against an *adaptive* threshold γ.
//! Sustained positive trend above γ signals overuse; below −γ signals
//! underuse (queue draining).

use std::collections::VecDeque;

use ravel_sim::Time;

use crate::interarrival::PacketGroupDelta;

/// The detector's three-valued output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandwidthUsage {
    /// Queue is stable.
    Normal,
    /// Queue is growing: the path is over-used.
    Overusing,
    /// Queue is draining: the path is under-used.
    Underusing,
}

/// Trendline estimator with libwebrtc's default tuning.
#[derive(Debug, Clone)]
pub struct TrendlineEstimator {
    /// Sliding window of (arrival seconds, smoothed delay ms).
    window: VecDeque<(f64, f64)>,
    window_size: usize,
    /// EWMA coefficient for the accumulated delay.
    smoothing: f64,
    /// Accumulated (summed) delay variation, ms.
    accumulated_delay_ms: f64,
    /// Smoothed accumulated delay, ms.
    smoothed_delay_ms: f64,
    /// Number of deltas seen so far.
    num_deltas: u64,
    /// Gain applied to the fitted slope (libwebrtc: 4.0).
    threshold_gain: f64,
    /// Adaptive threshold γ in ms (initial 12.5).
    threshold_ms: f64,
    /// Adaptive threshold gains (libwebrtc k_up/k_down).
    k_up: f64,
    k_down: f64,
    /// Time the current overuse hypothesis started.
    overuse_start: Option<Time>,
    /// Sustained-overuse requirement (libwebrtc: 10 ms).
    overuse_time_threshold_ms: f64,
    /// Consecutive overuse samples.
    overuse_counter: u32,
    last_update: Option<Time>,
    state: BandwidthUsage,
    last_trend: f64,
}

impl Default for TrendlineEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl TrendlineEstimator {
    /// Creates an estimator with libwebrtc default parameters.
    pub fn new() -> TrendlineEstimator {
        TrendlineEstimator {
            window: VecDeque::new(),
            window_size: 20,
            smoothing: 0.9,
            accumulated_delay_ms: 0.0,
            smoothed_delay_ms: 0.0,
            num_deltas: 0,
            threshold_gain: 4.0,
            threshold_ms: 12.5,
            k_up: 0.0087,
            k_down: 0.039,
            overuse_start: None,
            overuse_time_threshold_ms: 10.0,
            overuse_counter: 0,
            last_update: None,
            state: BandwidthUsage::Normal,
            last_trend: 0.0,
        }
    }

    /// The current detector state.
    pub fn state(&self) -> BandwidthUsage {
        self.state
    }

    /// The most recent modified trend (ms).
    pub fn modified_trend_ms(&self) -> f64 {
        self.last_trend
    }

    /// The current adaptive threshold (ms).
    pub fn threshold_ms(&self) -> f64 {
        self.threshold_ms
    }

    /// Feeds one inter-group delta; returns the updated state.
    pub fn update(&mut self, delta: &PacketGroupDelta) -> BandwidthUsage {
        self.num_deltas += 1;
        self.accumulated_delay_ms += delta.delay_variation_ms;
        self.smoothed_delay_ms = self.smoothing * self.smoothed_delay_ms
            + (1.0 - self.smoothing) * self.accumulated_delay_ms;

        self.window
            .push_back((delta.arrival.as_secs_f64(), self.smoothed_delay_ms));
        if self.window.len() > self.window_size {
            self.window.pop_front();
        }

        let trend = self.linear_fit_slope().unwrap_or(0.0);
        // Modified trend: slope scaled by sample count (capped) and gain,
        // in ms — comparable against γ.
        let samples = (self.num_deltas.min(60)) as f64;
        let modified_trend = trend * samples * self.threshold_gain;
        self.last_trend = modified_trend;

        self.detect(modified_trend, delta.arrival);
        self.adapt_threshold(modified_trend, delta.arrival);
        self.state
    }

    /// Least-squares slope of the window, in ms per second.
    fn linear_fit_slope(&self) -> Option<f64> {
        let n = self.window.len();
        if n < 2 {
            return None;
        }
        let (sum_x, sum_y): (f64, f64) = self
            .window
            .iter()
            .fold((0.0, 0.0), |(sx, sy), &(x, y)| (sx + x, sy + y));
        let mean_x = sum_x / n as f64;
        let mean_y = sum_y / n as f64;
        let (num, den) = self.window.iter().fold((0.0, 0.0), |(num, den), &(x, y)| {
            (
                num + (x - mean_x) * (y - mean_y),
                den + (x - mean_x).powi(2),
            )
        });
        if den.abs() < 1e-12 {
            None
        } else {
            // x in seconds, y in ms → slope is ms/s; scale to "ms per
            // group" using a nominal 1 group ≈ 1/trendline-rate; libwebrtc
            // works in ms/ms — dividing by 1000 matches its magnitude.
            Some(num / den / 1000.0)
        }
    }

    fn detect(&mut self, modified_trend: f64, now: Time) {
        if modified_trend > self.threshold_ms {
            let start = *self.overuse_start.get_or_insert(now);
            self.overuse_counter += 1;
            let sustained_ms = now.saturating_since(start).as_millis_f64();
            if sustained_ms >= self.overuse_time_threshold_ms && self.overuse_counter > 1 {
                self.state = BandwidthUsage::Overusing;
            }
        } else if modified_trend < -self.threshold_ms {
            self.overuse_start = None;
            self.overuse_counter = 0;
            self.state = BandwidthUsage::Underusing;
        } else {
            self.overuse_start = None;
            self.overuse_counter = 0;
            self.state = BandwidthUsage::Normal;
        }
    }

    /// Adapts γ toward |trend| (fast down, slow up) so transient spikes
    /// do not permanently desensitize the detector.
    fn adapt_threshold(&mut self, modified_trend: f64, now: Time) {
        let dt_ms = match self.last_update {
            Some(last) => now.saturating_since(last).as_millis_f64().min(100.0),
            None => 100.0,
        };
        self.last_update = Some(now);
        let abs_trend = modified_trend.abs();
        // libwebrtc ignores samples far above the threshold to avoid
        // adapting to its own overuse.
        if abs_trend > self.threshold_ms + 15.0 {
            return;
        }
        let k = if abs_trend < self.threshold_ms {
            self.k_down
        } else {
            self.k_up
        };
        self.threshold_ms += k * (abs_trend - self.threshold_ms) * dt_ms;
        self.threshold_ms = self.threshold_ms.clamp(6.0, 600.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ravel_sim::Dur;

    fn delta(var_ms: f64, at_ms: u64) -> PacketGroupDelta {
        PacketGroupDelta {
            delay_variation_ms: var_ms,
            arrival: Time::from_millis(at_ms),
            send_delta: Dur::millis(10),
        }
    }

    #[test]
    fn stable_path_is_normal() {
        let mut est = TrendlineEstimator::new();
        for i in 0..100 {
            let s = est.update(&delta(0.0, i * 10));
            assert_eq!(s, BandwidthUsage::Normal);
        }
    }

    #[test]
    fn growing_queue_detected_as_overuse() {
        let mut est = TrendlineEstimator::new();
        // Warm up stable.
        for i in 0..30 {
            est.update(&delta(0.0, i * 10));
        }
        // Queue grows 5 ms per group — a clear capacity drop signature.
        let mut overused = false;
        for i in 30..60 {
            if est.update(&delta(5.0, i * 10)) == BandwidthUsage::Overusing {
                overused = true;
                break;
            }
        }
        assert!(
            overused,
            "never detected overuse; trend {}",
            est.modified_trend_ms()
        );
    }

    #[test]
    fn draining_queue_detected_as_underuse() {
        let mut est = TrendlineEstimator::new();
        for i in 0..30 {
            est.update(&delta(0.0, i * 10));
        }
        let mut underused = false;
        for i in 30..60 {
            if est.update(&delta(-5.0, i * 10)) == BandwidthUsage::Underusing {
                underused = true;
                break;
            }
        }
        assert!(underused);
    }

    #[test]
    fn overuse_requires_sustained_trend() {
        let mut est = TrendlineEstimator::new();
        for i in 0..30 {
            est.update(&delta(0.0, i * 10));
        }
        // One spiky group must not trigger.
        let s = est.update(&delta(30.0, 300));
        assert_ne!(s, BandwidthUsage::Overusing);
    }

    #[test]
    fn threshold_adapts_down_on_quiet_path() {
        let mut est = TrendlineEstimator::new();
        let initial = est.threshold_ms();
        for i in 0..300 {
            est.update(&delta(0.0, i * 10));
        }
        assert!(est.threshold_ms() < initial);
        assert!(est.threshold_ms() >= 6.0);
    }

    #[test]
    fn recovery_returns_to_normal() {
        let mut est = TrendlineEstimator::new();
        for i in 0..30 {
            est.update(&delta(0.0, i * 10));
        }
        for i in 30..60 {
            est.update(&delta(5.0, i * 10));
        }
        // Drain, then stabilize.
        for i in 60..90 {
            est.update(&delta(-5.0, i * 10));
        }
        for i in 90..150 {
            est.update(&delta(0.0, i * 10));
        }
        assert_eq!(est.state(), BandwidthUsage::Normal);
    }
}
