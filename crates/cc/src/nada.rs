//! NADA congestion control (RFC 8698), behavioural port.
//!
//! NADA folds every congestion signal into one scalar — the *aggregate
//! congestion signal* `x_curr` — and runs a single rate law on it:
//!
//! ```text
//! x_curr = d_queuing + DLOSS_REF · (p_loss / PLR_REF)²
//! ```
//!
//! where `d_queuing` is the one-way queuing delay (OWD minus the minimum
//! OWD observed so far) and `p_loss` is an EMA of the per-report loss
//! fraction. The quadratic loss term means sub-reference loss barely
//! registers while sustained loss dominates the signal.
//!
//! Two update modes, per RFC 8698 §4.3:
//!
//! * **Accelerated ramp-up** — while the path shows no congestion (no
//!   recent loss, queuing delay under a small threshold), grow the rate
//!   multiplicatively by `γ = min(GAMMA_MAX, QBOUND / (rtt + δ))` per
//!   report. The bound ties the per-step overshoot to at most `QBOUND`
//!   of standing queue.
//! * **Gradual update** — otherwise run the PI controller
//!   `r ← r · (1 − κ·(δ/τ)·(x_offset + η·x_diff)/τ)` with
//!   `x_offset = x_curr − XREF` and `x_diff = x_curr − x_prev`. The
//!   proportional term (`x_diff`) damps oscillation; the integral term
//!   (`x_offset`) steers the standing signal toward `XREF`.
//!
//! Deviations from the RFC, in the spirit of this repo's behavioural
//! ports: no sender-side pacing/video-jitter shaping (the pipeline's
//! pacer owns that), δ comes from feedback-report spacing rather than a
//! dedicated timer, and the RTT is proxied from twice the base one-way
//! delay since the simulator's reverse path is not separately measured
//! here.

use ravel_net::FeedbackReport;
use ravel_sim::Time;

use crate::CongestionController;

/// Reference delay penalty for loss at `PLR_REF` (ms). RFC 8698 `DLOSS`.
const DLOSS_REF_MS: f64 = 10.0;
/// Reference packet-loss ratio. RFC 8698 `PLRREF`.
const PLR_REF: f64 = 0.01;
/// Reference congestion signal the PI controller steers toward (ms).
const XREF_MS: f64 = 10.0;
/// Scaling parameter for the gradual-mode rate update.
const KAPPA: f64 = 0.5;
/// Weight of the proportional (delay-gradient) term.
const ETA: f64 = 2.0;
/// Upper bound of the filtering delay / PI time constant (ms).
const TAU_MS: f64 = 500.0;
/// Upper bound on self-inflicted queuing delay during ramp-up (ms).
const QBOUND_MS: f64 = 50.0;
/// Queuing delay below which ramp-up mode is eligible (ms).
const QEPS_MS: f64 = 10.0;
/// Hard cap on γ, the per-report ramp-up growth factor.
const GAMMA_MAX: f64 = 0.5;
/// EMA smoothing weight kept from the previous loss estimate.
const LOSS_EMA_KEEP: f64 = 0.9;
/// Loss EMA below which the path counts as loss-free for ramp-up.
const LOSS_FREE: f64 = 0.001;
/// Cap on the loss penalty term (ms) so blackout math stays tame.
const PENALTY_CAP_MS: f64 = 10_000.0;
/// Per-update rate-change clamp: never move more than ±50% per report.
const STEP_CLAMP: f64 = 0.5;
/// Assumed report spacing before the second report arrives (ms).
const DEFAULT_DELTA_MS: f64 = 100.0;

/// Configuration for [`Nada`].
#[derive(Debug, Clone, Copy)]
pub struct NadaConfig {
    /// Initial target rate.
    pub start_bps: f64,
    /// Floor.
    pub min_bps: f64,
    /// Ceiling.
    pub max_bps: f64,
}

impl NadaConfig {
    /// Config with the repo-standard 150 kbps floor and 8 Mbps ceiling.
    pub fn new(start_bps: f64) -> NadaConfig {
        NadaConfig {
            start_bps,
            min_bps: 150_000.0,
            max_bps: 8e6,
        }
    }
}

/// RFC 8698 NADA controller.
#[derive(Debug, Clone)]
pub struct Nada {
    min_bps: f64,
    max_bps: f64,
    rate_bps: f64,
    /// Minimum one-way delay observed so far (ms); the propagation-delay
    /// baseline that turns OWD samples into queuing delay.
    base_owd_ms: f64,
    /// EMA of the per-report loss fraction.
    p_loss: f64,
    /// Previous aggregate congestion signal (ms), for the x_diff term.
    x_prev_ms: f64,
    last_update: Option<Time>,
    reason: &'static str,
}

impl Nada {
    /// Creates a NADA controller from `cfg`.
    pub fn new(cfg: NadaConfig) -> Nada {
        assert!(
            cfg.min_bps > 0.0 && cfg.min_bps <= cfg.max_bps,
            "bad rate bounds"
        );
        Nada {
            min_bps: cfg.min_bps,
            max_bps: cfg.max_bps,
            rate_bps: cfg.start_bps.clamp(cfg.min_bps, cfg.max_bps),
            base_owd_ms: f64::INFINITY,
            p_loss: 0.0,
            x_prev_ms: 0.0,
            last_update: None,
            reason: "nada-rampup",
        }
    }

    /// Minimum one-way delay across the report's received packets, if any.
    fn min_owd_ms(report: &FeedbackReport) -> Option<f64> {
        report
            .packets
            .iter()
            .filter_map(|p| {
                let arrival = p.arrival?;
                Some(arrival.saturating_since(p.send_time).as_millis_f64())
            })
            .fold(None, |acc: Option<f64>, owd| {
                Some(acc.map_or(owd, |a| a.min(owd)))
            })
    }
}

impl CongestionController for Nada {
    fn on_feedback(&mut self, report: &FeedbackReport, now: Time) -> f64 {
        // Congestion-signal inputs. A report with no arrivals (blackout
        // slice) contributes a pure loss sample and leaves the delay
        // estimate untouched.
        let d_queue_ms = match Nada::min_owd_ms(report) {
            Some(owd) if owd.is_finite() => {
                self.base_owd_ms = self.base_owd_ms.min(owd);
                owd - self.base_owd_ms
            }
            _ => 0.0,
        };
        let loss_sample = if report.packets.is_empty() {
            0.0
        } else {
            report.loss_fraction()
        };
        self.p_loss = LOSS_EMA_KEEP * self.p_loss + (1.0 - LOSS_EMA_KEEP) * loss_sample;

        let penalty_ms = (DLOSS_REF_MS * (self.p_loss / PLR_REF).powi(2)).min(PENALTY_CAP_MS);
        let x_curr_ms = d_queue_ms + penalty_ms;

        // Update interval δ, clamped so a long feedback gap cannot blow
        // up a single PI step.
        let delta_ms = match self.last_update {
            Some(last) => now
                .saturating_since(last)
                .as_millis_f64()
                .clamp(1.0, TAU_MS),
            None => DEFAULT_DELTA_MS,
        };
        // RTT proxy: twice the propagation baseline, floored at 10 ms.
        let rtt_ms = if self.base_owd_ms.is_finite() {
            (2.0 * self.base_owd_ms).max(10.0)
        } else {
            10.0
        };

        let clean = self.p_loss < LOSS_FREE && loss_sample == 0.0 && d_queue_ms < QEPS_MS;
        if clean {
            // Accelerated ramp-up.
            let gamma = (QBOUND_MS / (rtt_ms + delta_ms)).min(GAMMA_MAX);
            self.rate_bps *= 1.0 + gamma;
            self.reason = "nada-rampup";
        } else {
            // Gradual update: PI controller on the congestion signal.
            let x_offset = x_curr_ms - XREF_MS;
            let x_diff = x_curr_ms - self.x_prev_ms;
            let adjust = KAPPA * (delta_ms / TAU_MS) * (x_offset + ETA * x_diff) / TAU_MS;
            self.rate_bps *= 1.0 - adjust.clamp(-STEP_CLAMP, STEP_CLAMP);
            self.reason = "nada-gradual";
        }
        self.rate_bps = self.rate_bps.clamp(self.min_bps, self.max_bps);
        self.x_prev_ms = x_curr_ms;
        self.last_update = Some(now);
        self.rate_bps
    }

    fn target_bps(&self) -> f64 {
        self.rate_bps
    }

    fn name(&self) -> &'static str {
        "nada"
    }

    fn decision_reason(&self) -> &'static str {
        self.reason
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ravel_net::PacketResult;
    use ravel_sim::Time;

    /// A report of `n` packets sent `send_gap_ms` apart starting at
    /// `send_start_ms`, each arriving `owd_ms` later; every
    /// `lost_every`-th packet (if set) never arrives.
    fn report(
        first_seq: u64,
        n: u64,
        send_start_ms: u64,
        owd_ms: u64,
        lost_every: Option<u64>,
    ) -> FeedbackReport {
        let packets = (0..n)
            .map(|i| {
                let send = Time::from_millis(send_start_ms + i * 10);
                let lost = lost_every.is_some_and(|k| i % k == 0);
                PacketResult {
                    seq: first_seq + i,
                    send_time: send,
                    arrival: (!lost).then(|| send + ravel_sim::Dur::millis(owd_ms)),
                    size_bytes: 1200,
                }
            })
            .collect();
        FeedbackReport {
            report_seq: first_seq / n.max(1),
            generated_at: Time::from_millis(send_start_ms + n * 10 + owd_ms),
            packets,
        }
    }

    #[test]
    fn clean_link_ramps_up_multiplicatively() {
        let mut cc = Nada::new(NadaConfig::new(500_000.0));
        let mut target = cc.target_bps();
        for i in 0..20u64 {
            let r = report(i * 10, 10, i * 100, 20, None);
            target = cc.on_feedback(&r, Time::from_millis((i + 1) * 100));
        }
        assert!(target > 2_000_000.0, "no accelerated ramp: {target}");
        assert_eq!(cc.decision_reason(), "nada-rampup");
    }

    #[test]
    fn queuing_delay_growth_forces_decrease() {
        let mut cc = Nada::new(NadaConfig::new(4e6));
        // Establish the base delay.
        cc.on_feedback(&report(0, 10, 0, 20, None), Time::from_millis(100));
        let before = cc.target_bps();
        // Queuing delay climbing 15 ms per report above base.
        let mut target = before;
        for i in 1..10u64 {
            let r = report(i * 10, 10, i * 100, 20 + i * 15, None);
            target = cc.on_feedback(&r, Time::from_millis((i + 1) * 100));
        }
        assert!(
            target < before,
            "queue growth ignored: {target} >= {before}"
        );
        assert_eq!(cc.decision_reason(), "nada-gradual");
    }

    #[test]
    fn sustained_loss_dominates_the_signal() {
        let mut cc = Nada::new(NadaConfig::new(4e6));
        let mut target = cc.target_bps();
        // 25% loss: (p_loss/PLR_REF)² grows toward 625 → penalty caps.
        for i in 0..30u64 {
            let r = report(i * 8, 8, i * 100, 20, Some(4));
            target = cc.on_feedback(&r, Time::from_millis((i + 1) * 100));
        }
        assert!(target < 1e6, "heavy loss not punished: {target}");
    }

    #[test]
    fn blackout_reports_drive_rate_to_floor_and_stay_finite() {
        let mut cc = Nada::new(NadaConfig::new(4e6));
        cc.on_feedback(&report(0, 10, 0, 20, None), Time::from_millis(100));
        for i in 1..60u64 {
            // All packets lost.
            let r = report(i * 10, 10, i * 100, 20, Some(1));
            let t = cc.on_feedback(&r, Time::from_millis((i + 1) * 100));
            assert!(t.is_finite());
        }
        assert_eq!(cc.target_bps(), 150_000.0);
    }

    #[test]
    fn rate_stays_within_bounds() {
        let mut cc = Nada::new(NadaConfig::new(7.9e6));
        for i in 0..200u64 {
            let r = report(i * 10, 10, i * 100, 5, None);
            let t = cc.on_feedback(&r, Time::from_millis((i + 1) * 100));
            assert!((150_000.0..=8e6).contains(&t), "out of bounds: {t}");
        }
        assert_eq!(cc.target_bps(), 8e6);
    }
}
