//! # ravel-cc — congestion control for the RTC sender
//!
//! The baseline the paper measures against is Google Congestion Control
//! (GCC), the delay-based controller that ships in libwebrtc. This crate
//! is a behavioural port of its pipeline:
//!
//! ```text
//! feedback → InterArrival (packet grouping)
//!          → Trendline (delay-gradient slope)
//!          → OveruseDetector (adaptive threshold)
//!          → AimdRateControl (0.85× decrease / careful increase)
//!          → min(delay-based, loss-based) target
//! ```
//!
//! GCC's reaction to a sudden drop takes several feedback rounds: the
//! trendline needs enough packet groups to see the gradient, the
//! detector needs sustained overuse, and each AIMD decrease only cuts to
//! 0.85× the *measured received* rate. This multi-RTT lag — on top of
//! the encoder's own lag — is what the adaptive controller in
//! `ravel-core` bypasses.
//!
//! [`baselines`] adds the two strawmen used in E8: a fixed-rate sender
//! and a loss-only AIMD.
//!
//! ## The controller arena
//!
//! Beyond GCC, the crate ships three alternative controllers so the
//! paper's claim — one-frame encoder adaptation helps *regardless of
//! the CC underneath* — can be tested head-to-head (the harness E22
//! grid):
//!
//! * [`Nada`] — RFC 8698: one aggregate congestion signal
//!   (queuing delay + quadratic loss penalty) driving a PI rate law,
//!   with accelerated ramp-up on clean paths.
//! * [`Bbr`] — BBR-style: windowed max-filter over delivery-rate
//!   samples with periodic pacing-gain probe cycles.
//! * [`LossEma`] — beam's production loss loop: per-interval loss rate,
//!   EMA smoothing, threshold AIMD.
//!
//! All four implement [`CongestionController`] and pass the shared
//! conformance battery in `tests/conformance.rs` (finite/bounded
//! targets under arbitrary feedback, ramp-up, convergence, step-drop
//! reaction, blackout recovery, bit-exact determinism).

#![warn(missing_docs)]

pub mod aimd;
pub mod baselines;
pub mod bbr;
pub mod gcc;
pub mod interarrival;
pub mod loss;
pub mod loss_ema;
pub mod nada;
pub mod throughput;
pub mod trendline;

pub use aimd::{AimdRateControl, RateControlState};
pub use baselines::{FixedRate, NaiveAimd};
pub use bbr::{Bbr, BbrConfig};
pub use gcc::{Gcc, GccConfig};
pub use interarrival::{InterArrival, PacketGroupDelta};
pub use loss::LossController;
pub use loss_ema::{LossEma, LossEmaConfig};
pub use nada::{Nada, NadaConfig};
pub use throughput::ThroughputEstimator;
pub use trendline::{BandwidthUsage, TrendlineEstimator};

use ravel_net::FeedbackReport;
use ravel_sim::Time;

/// A sender-side congestion controller driven by transport-wide feedback.
pub trait CongestionController {
    /// Ingests one feedback report; returns the (possibly updated) target
    /// bitrate in bits/second.
    fn on_feedback(&mut self, report: &FeedbackReport, now: Time) -> f64;

    /// The current target bitrate in bits/second.
    fn target_bps(&self) -> f64;

    /// A short name for experiment tables.
    fn name(&self) -> &'static str;

    /// A stable label for the controller's latest rate decision,
    /// consumed by the observability layer's `TargetChanged` events
    /// (e.g. GCC reports its detector state). Defaults to a generic
    /// label for controllers without internal modes.
    fn decision_reason(&self) -> &'static str {
        "feedback"
    }

    /// Downcast hook so instrumentation can reach concrete controllers
    /// (e.g. the session recorder logging GCC's detector state).
    fn as_any(&self) -> &dyn std::any::Any;
}
