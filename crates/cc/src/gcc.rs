//! Google Congestion Control: the assembled pipeline.

use ravel_net::FeedbackReport;
use ravel_sim::{Dur, Time};

use crate::aimd::AimdRateControl;
use crate::interarrival::InterArrival;
use crate::loss::LossController;
use crate::throughput::ThroughputEstimator;
use crate::trendline::{BandwidthUsage, TrendlineEstimator};
use crate::CongestionController;

/// GCC configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GccConfig {
    /// Initial target bitrate.
    pub start_bps: f64,
    /// Floor for the target.
    pub min_bps: f64,
    /// Ceiling for the target.
    pub max_bps: f64,
}

impl GccConfig {
    /// A typical video-call configuration.
    pub fn new(start_bps: f64) -> GccConfig {
        GccConfig {
            start_bps,
            min_bps: 150_000.0,
            max_bps: 8e6,
        }
    }
}

/// The assembled GCC controller.
///
/// ```
/// use ravel_cc::{CongestionController, Gcc, GccConfig};
/// use ravel_net::{FeedbackReport, PacketResult};
/// use ravel_sim::Time;
///
/// let mut gcc = Gcc::new(GccConfig::new(2e6));
/// let report = FeedbackReport {
///     report_seq: 0,
///     generated_at: Time::from_millis(100),
///     packets: (0..10)
///         .map(|i| PacketResult {
///             seq: i,
///             send_time: Time::from_millis(i * 10),
///             arrival: Some(Time::from_millis(i * 10 + 30)),
///             size_bytes: 1250,
///         })
///         .collect(),
/// };
/// let target = gcc.on_feedback(&report, Time::from_millis(150));
/// assert!(target > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Gcc {
    interarrival: InterArrival,
    trendline: TrendlineEstimator,
    aimd: AimdRateControl,
    loss: LossController,
    throughput: ThroughputEstimator,
    target_bps: f64,
}

impl Gcc {
    /// Creates a GCC instance.
    pub fn new(cfg: GccConfig) -> Gcc {
        Gcc {
            interarrival: InterArrival::default(),
            trendline: TrendlineEstimator::new(),
            aimd: AimdRateControl::new(cfg.start_bps, cfg.min_bps, cfg.max_bps),
            loss: LossController::new(cfg.start_bps, cfg.min_bps, cfg.max_bps),
            throughput: ThroughputEstimator::new(Dur::millis(500)),
            target_bps: cfg.start_bps,
        }
    }

    /// The delay-based detector's current verdict (exposed for
    /// experiment instrumentation).
    pub fn detector_state(&self) -> crate::trendline::BandwidthUsage {
        self.trendline.state()
    }

    /// The current delivered-rate estimate, if any.
    pub fn delivered_bps(&mut self, now: Time) -> Option<f64> {
        self.throughput.rate_bps(now)
    }

    /// The trendline's latest modified trend in milliseconds (exposed
    /// for experiment instrumentation).
    pub fn trend_ms(&self) -> f64 {
        self.trendline.modified_trend_ms()
    }
}

impl CongestionController for Gcc {
    fn on_feedback(&mut self, report: &FeedbackReport, now: Time) -> f64 {
        // 1. Feed arrivals through grouping → trendline.
        let mut new_deltas = 0u32;
        for p in &report.packets {
            if let Some(arrival) = p.arrival {
                self.throughput.on_bytes(p.size_bytes, arrival);
                if let Some(delta) = self.interarrival.on_packet(p.send_time, arrival) {
                    self.trendline.update(&delta);
                    new_deltas += 1;
                }
            }
        }

        // 2. Delay-based target via AIMD — but only on fresh evidence.
        //    A report that completed no packet group leaves the detector
        //    state stale; acting on it would re-apply the same overuse
        //    verdict every report and cascade decreases.
        let delivered = self.throughput.rate_bps(now);
        let delay_target = if new_deltas > 0 {
            self.aimd.update(self.trendline.state(), delivered, now)
        } else {
            self.aimd.target_bps()
        };

        // 3. Loss-based target.
        let loss_target = self.loss.update(report.loss_fraction(), now);

        self.target_bps = delay_target.min(loss_target);
        self.target_bps
    }

    fn target_bps(&self) -> f64 {
        self.target_bps
    }

    fn name(&self) -> &'static str {
        "gcc"
    }

    fn decision_reason(&self) -> &'static str {
        match self.detector_state() {
            BandwidthUsage::Normal => "gcc-normal",
            BandwidthUsage::Overusing => "gcc-overuse",
            BandwidthUsage::Underusing => "gcc-underuse",
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ravel_net::PacketResult;

    /// Builds a report of `n` packets sent every `send_gap_ms` and
    /// arriving with spacing `arrival_gap_ms`, starting at the given
    /// times.
    fn report(
        first_seq: u64,
        n: u64,
        send_start_ms: u64,
        send_gap_ms: u64,
        arrival_start_ms: u64,
        arrival_gap_ms: u64,
        lost_every: Option<u64>,
    ) -> FeedbackReport {
        let packets = (0..n)
            .map(|i| {
                let lost = lost_every.map(|k| i % k == k - 1).unwrap_or(false);
                PacketResult {
                    seq: first_seq + i,
                    send_time: Time::from_millis(send_start_ms + i * send_gap_ms),
                    arrival: if lost {
                        None
                    } else {
                        Some(Time::from_millis(arrival_start_ms + i * arrival_gap_ms))
                    },
                    size_bytes: 1250,
                }
            })
            .collect();
        FeedbackReport {
            report_seq: 0,
            generated_at: Time::from_millis(arrival_start_ms + n * arrival_gap_ms),
            packets,
        }
    }

    #[test]
    fn stable_path_allows_ramp_up() {
        let mut gcc = Gcc::new(GccConfig::new(1e6));
        let mut seq = 0;
        let mut target = 1e6;
        for round in 0..40u64 {
            // 10 packets per 100 ms round, matched send/arrival spacing.
            let r = report(seq, 10, round * 100, 10, round * 100 + 30, 10, None);
            seq += 10;
            target = gcc.on_feedback(&r, Time::from_millis((round + 1) * 100));
        }
        assert!(target > 1e6, "no ramp: {target}");
    }

    #[test]
    fn queue_growth_forces_decrease() {
        let mut gcc = Gcc::new(GccConfig::new(4e6));
        let mut seq = 0;
        // Warm up stable.
        for round in 0..10u64 {
            let r = report(seq, 10, round * 100, 10, round * 100 + 30, 10, None);
            seq += 10;
            gcc.on_feedback(&r, Time::from_millis((round + 1) * 100));
        }
        let before = gcc.target_bps();
        // Arrival spacing 15 ms for 10 ms sends: queue grows 5 ms/packet.
        let mut target = before;
        for round in 10..25u64 {
            let r = report(
                seq,
                10,
                round * 100,
                10,
                1030 + (round - 10) * 150,
                15,
                None,
            );
            seq += 10;
            target = gcc.on_feedback(&r, Time::from_millis((round + 1) * 100));
        }
        assert!(target < before * 0.95, "no decrease: {before} -> {target}");
    }

    #[test]
    fn heavy_loss_caps_target() {
        let mut gcc = Gcc::new(GccConfig::new(4e6));
        let mut seq = 0;
        let mut target = 4e6;
        for round in 0..10u64 {
            // Every 3rd packet lost: ~33% loss.
            let r = report(seq, 9, round * 100, 10, round * 100 + 30, 10, Some(3));
            seq += 9;
            target = gcc.on_feedback(&r, Time::from_millis((round + 1) * 100));
        }
        assert!(target < 4e6 * 0.5, "loss ignored: {target}");
    }

    #[test]
    fn target_is_min_of_arms() {
        let mut gcc = Gcc::new(GccConfig::new(2e6));
        let r = report(0, 10, 0, 10, 30, 10, None);
        let t = gcc.on_feedback(&r, Time::from_millis(200));
        assert!(t <= gcc.loss.target_bps() + 1.0);
        assert!(t <= gcc.aimd.target_bps() + 1.0);
    }

    #[test]
    fn name_is_gcc() {
        assert_eq!(Gcc::new(GccConfig::new(1e6)).name(), "gcc");
    }

    #[test]
    fn reaction_takes_multiple_reports() {
        // The property the paper exploits: a sudden drop is not fully
        // tracked by the first post-drop report.
        let mut gcc = Gcc::new(GccConfig::new(4e6));
        let mut seq = 0;
        for round in 0..10u64 {
            let r = report(seq, 10, round * 100, 10, round * 100 + 30, 10, None);
            seq += 10;
            gcc.on_feedback(&r, Time::from_millis((round + 1) * 100));
        }
        // After the drop, arrivals stretch 4x (40 ms spacing) but reports
        // still flush every 100 ms, so each post-drop report carries only
        // ~3 packets. One report is not enough to fully track the drop...
        let r = report(seq, 3, 1000, 10, 1030, 40, None);
        seq += 3;
        let after_one = gcc.on_feedback(&r, Time::from_millis(1100));
        // Post-drop delivered rate in this synthetic stream is ~250 kbps;
        // full tracking would be 0.85x that. One report must not get
        // there (the 1.5x-delivered cap reacts first, the AIMD decrease
        // needs sustained overuse evidence).
        assert!(
            after_one > 0.5e6,
            "GCC fully tracked a 4x drop in one report: {after_one}"
        );
        // ...but a second or two of reports gets it most of the way down.
        let mut target = after_one;
        for round in 1..20u64 {
            let r = report(seq, 3, 1000 + round * 100, 10, 1030 + round * 120, 40, None);
            seq += 3;
            target = gcc.on_feedback(&r, Time::from_millis(1100 + round * 100));
        }
        assert!(target < after_one, "never converged: {target}");
    }
}
