//! The AIMD rate controller (libwebrtc `AimdRateControl`).
//!
//! Maps detector states to target-rate changes through a three-state
//! machine:
//!
//! * **Overusing** → `Decrease`: cut the target to `β ×` the measured
//!   delivered rate (β = 0.85), then hold.
//! * **Underusing** → `Hold`: the queue is draining; don't push yet.
//! * **Normal** → `Increase` after the hold period: multiplicative (+8%/s)
//!   far from the last-known capacity, additive (~one packet per
//!   response time) near it.
//!
//! The decrease being anchored at 0.85× of *delivered* (not target) rate
//! means a deep capacity drop is tracked in a couple of decreases — but
//! each decrease needs a fresh sustained-overuse signal, so several
//! feedback RTTs pass in between. That staircase is visible in E3's
//! time series.

use ravel_sim::{Dur, Time};

use crate::trendline::BandwidthUsage;

/// The controller's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateControlState {
    /// Ramp the target up.
    Increase,
    /// Keep the target.
    Hold,
    /// Cut the target.
    Decrease,
}

/// AIMD target-rate controller.
#[derive(Debug, Clone)]
pub struct AimdRateControl {
    target_bps: f64,
    min_bps: f64,
    max_bps: f64,
    state: RateControlState,
    /// β: multiplicative-decrease factor applied to the delivered rate.
    beta: f64,
    /// Multiplicative increase per second when far from capacity.
    increase_per_sec: f64,
    /// Estimate of the link capacity from the last decrease; additive
    /// (careful) increase applies within ±3 std of it.
    link_capacity_bps: Option<f64>,
    last_change: Option<Time>,
    /// Feedback response time (RTT + processing); sets additive step.
    response_time: Dur,
    avg_packet_bits: f64,
}

impl AimdRateControl {
    /// Creates a controller starting at `start_bps`, clamped into
    /// `[min_bps, max_bps]`.
    pub fn new(start_bps: f64, min_bps: f64, max_bps: f64) -> AimdRateControl {
        assert!(min_bps > 0.0 && min_bps <= max_bps, "bad rate bounds");
        AimdRateControl {
            target_bps: start_bps.clamp(min_bps, max_bps),
            min_bps,
            max_bps,
            state: RateControlState::Hold,
            beta: 0.85,
            increase_per_sec: 0.08,
            link_capacity_bps: None,
            last_change: None,
            response_time: Dur::millis(140),
            avg_packet_bits: 1200.0 * 8.0,
        }
    }

    /// The current target rate.
    pub fn target_bps(&self) -> f64 {
        self.target_bps
    }

    /// The current state.
    pub fn state(&self) -> RateControlState {
        self.state
    }

    /// Updates the target given the detector verdict and the measured
    /// delivered rate (if known). Returns the new target.
    pub fn update(&mut self, usage: BandwidthUsage, delivered_bps: Option<f64>, now: Time) -> f64 {
        // State transitions (libwebrtc ChangeState).
        self.state = match (usage, self.state) {
            (BandwidthUsage::Overusing, _) => RateControlState::Decrease,
            (BandwidthUsage::Underusing, _) => RateControlState::Hold,
            (BandwidthUsage::Normal, RateControlState::Hold) => RateControlState::Increase,
            (BandwidthUsage::Normal, s) => {
                if s == RateControlState::Decrease {
                    RateControlState::Hold
                } else {
                    s
                }
            }
        };

        let dt = match self.last_change {
            Some(last) => now.saturating_since(last),
            None => Dur::millis(100),
        };

        match self.state {
            RateControlState::Decrease => {
                let anchor = delivered_bps.unwrap_or(self.target_bps);
                let new_target = (self.beta * anchor).min(self.target_bps);
                self.link_capacity_bps = Some(anchor);
                self.target_bps = new_target.clamp(self.min_bps, self.max_bps);
                self.last_change = Some(now);
                // After a decrease, hold until the next Normal signal.
                self.state = RateControlState::Hold;
            }
            RateControlState::Increase => {
                let near_capacity = self
                    .link_capacity_bps
                    .map(|cap| self.target_bps > 0.9 * cap)
                    .unwrap_or(false);
                let dt_s = dt.as_secs_f64().min(1.0);
                let increased = if near_capacity {
                    // Additive: roughly one packet per response time.
                    let additive =
                        (self.avg_packet_bits / self.response_time.as_secs_f64()).max(1_000.0);
                    self.target_bps + additive * dt_s
                } else {
                    self.target_bps * (1.0 + self.increase_per_sec).powf(dt_s)
                };
                // Never *grow* far beyond what the path demonstrably
                // delivers — but never pull the target down here either:
                // a low delivered rate during Increase usually means the
                // application is sending less than the target
                // (application-limited, e.g. encoder debt repayment), not
                // that capacity fell. Reductions only happen on overuse
                // or loss evidence. (libwebrtc reaches the same end via
                // ALR detection.)
                let cap = delivered_bps
                    .map(|d| 1.5 * d + 10_000.0)
                    .unwrap_or(f64::MAX);
                self.target_bps = increased
                    .min(cap)
                    .max(self.target_bps)
                    .clamp(self.min_bps, self.max_bps);
                self.last_change = Some(now);
            }
            RateControlState::Hold => {
                self.last_change = Some(now);
            }
        }
        self.target_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    #[test]
    fn overuse_cuts_to_beta_times_delivered() {
        let mut rc = AimdRateControl::new(4e6, 0.1e6, 10e6);
        let target = rc.update(BandwidthUsage::Overusing, Some(1e6), t(100));
        assert!((target - 0.85e6).abs() < 1.0, "target {target}");
    }

    #[test]
    fn decrease_never_raises_target() {
        let mut rc = AimdRateControl::new(1e6, 0.1e6, 10e6);
        // Delivered above target (e.g. burst drain): keep target.
        let target = rc.update(BandwidthUsage::Overusing, Some(5e6), t(100));
        assert!(target <= 1e6);
    }

    #[test]
    fn normal_then_increase_ramps_up() {
        let mut rc = AimdRateControl::new(1e6, 0.1e6, 10e6);
        let mut target = rc.target_bps();
        for i in 1..50 {
            target = rc.update(BandwidthUsage::Normal, Some(3e6), t(i * 100));
        }
        assert!(target > 1.2e6, "no ramp: {target}");
    }

    #[test]
    fn increase_capped_by_delivered_rate() {
        let mut rc = AimdRateControl::new(1e6, 0.1e6, 100e6);
        let mut target = rc.target_bps();
        for i in 1..200 {
            target = rc.update(BandwidthUsage::Normal, Some(1e6), t(i * 100));
        }
        assert!(target <= 1.5e6 + 20_000.0, "ran away: {target}");
    }

    #[test]
    fn underuse_holds() {
        let mut rc = AimdRateControl::new(2e6, 0.1e6, 10e6);
        let before = rc.target_bps();
        let after = rc.update(BandwidthUsage::Underusing, Some(3e6), t(100));
        assert_eq!(before, after);
        assert_eq!(rc.state(), RateControlState::Hold);
    }

    #[test]
    fn staircase_down_on_repeated_overuse() {
        let mut rc = AimdRateControl::new(4e6, 0.1e6, 10e6);
        // Delivered rate reflects a 1 Mbps bottleneck.
        let t1 = rc.update(BandwidthUsage::Overusing, Some(2.5e6), t(100));
        rc.update(BandwidthUsage::Normal, Some(1.5e6), t(200));
        let t2 = rc.update(BandwidthUsage::Overusing, Some(1.5e6), t(300));
        rc.update(BandwidthUsage::Normal, Some(1e6), t(400));
        let t3 = rc.update(BandwidthUsage::Overusing, Some(1e6), t(500));
        assert!(t1 > t2 && t2 > t3, "staircase {t1} {t2} {t3}");
        assert!((t3 - 0.85e6).abs() < 1.0);
    }

    #[test]
    fn respects_min_and_max() {
        let mut rc = AimdRateControl::new(0.5e6, 0.3e6, 1e6);
        let low = rc.update(BandwidthUsage::Overusing, Some(0.1e6), t(100));
        assert_eq!(low, 0.3e6);
        let mut high = low;
        for i in 2..500 {
            high = rc.update(BandwidthUsage::Normal, Some(50e6), t(i * 100));
        }
        assert_eq!(high, 1e6);
    }

    #[test]
    fn additive_increase_near_capacity() {
        let mut rc = AimdRateControl::new(1e6, 0.1e6, 10e6);
        // Establish link capacity via a decrease.
        rc.update(BandwidthUsage::Overusing, Some(1.2e6), t(100));
        // target = 1.02e6, capacity anchor 1.2e6 → near capacity.
        rc.update(BandwidthUsage::Normal, Some(1.2e6), t(200)); // hold->increase
        let before = rc.target_bps();
        let after = rc.update(BandwidthUsage::Normal, Some(1.2e6), t(300));
        let step = after - before;
        // Additive step ~ avg_packet_bits/response_time * 0.1s ≈ 6.9 kbps.
        assert!(step > 0.0 && step < 50_000.0, "step {step}");
    }
}
