//! Strawman controllers for E8: fixed-rate and loss-only AIMD.

use ravel_net::FeedbackReport;
use ravel_sim::Time;

use crate::CongestionController;

/// Sends at a fixed configured rate regardless of feedback. The
/// "no congestion control" lower bound.
#[derive(Debug, Clone, Copy)]
pub struct FixedRate {
    rate_bps: f64,
}

impl FixedRate {
    /// Creates a fixed-rate controller.
    pub fn new(rate_bps: f64) -> FixedRate {
        assert!(rate_bps > 0.0 && rate_bps.is_finite(), "bad rate");
        FixedRate { rate_bps }
    }
}

impl CongestionController for FixedRate {
    fn on_feedback(&mut self, _report: &FeedbackReport, _now: Time) -> f64 {
        self.rate_bps
    }

    fn target_bps(&self) -> f64 {
        self.rate_bps
    }

    fn name(&self) -> &'static str {
        "fixed"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// TCP-flavoured loss-only AIMD: halve on any loss in a report, add a
/// fixed increment otherwise. Blind to delay, so it discovers a drop
/// only after the bottleneck queue overflows — the latency worst case.
#[derive(Debug, Clone)]
pub struct NaiveAimd {
    target_bps: f64,
    min_bps: f64,
    max_bps: f64,
    /// Additive increase per feedback report, bits/second.
    add_per_report: f64,
}

impl NaiveAimd {
    /// Creates a loss-only AIMD controller.
    pub fn new(start_bps: f64, min_bps: f64, max_bps: f64) -> NaiveAimd {
        assert!(min_bps > 0.0 && min_bps <= max_bps, "bad rate bounds");
        NaiveAimd {
            target_bps: start_bps.clamp(min_bps, max_bps),
            min_bps,
            max_bps,
            add_per_report: 50_000.0,
        }
    }
}

impl CongestionController for NaiveAimd {
    fn on_feedback(&mut self, report: &FeedbackReport, _now: Time) -> f64 {
        if report.lost_count() > 0 {
            self.target_bps /= 2.0;
        } else {
            self.target_bps += self.add_per_report;
        }
        self.target_bps = self.target_bps.clamp(self.min_bps, self.max_bps);
        self.target_bps
    }

    fn target_bps(&self) -> f64 {
        self.target_bps
    }

    fn name(&self) -> &'static str {
        "naive-aimd"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ravel_net::PacketResult;

    fn report(lost: usize, received: usize) -> FeedbackReport {
        let mut packets = Vec::new();
        for i in 0..(lost + received) as u64 {
            packets.push(PacketResult {
                seq: i,
                send_time: Time::ZERO,
                arrival: if (i as usize) < received {
                    Some(Time::from_millis(10 + i))
                } else {
                    None
                },
                size_bytes: 1250,
            });
        }
        FeedbackReport {
            report_seq: 0,
            generated_at: Time::from_millis(100),
            packets,
        }
    }

    #[test]
    fn fixed_rate_never_moves() {
        let mut fx = FixedRate::new(3e6);
        assert_eq!(fx.on_feedback(&report(5, 5), Time::from_millis(100)), 3e6);
        assert_eq!(fx.on_feedback(&report(0, 10), Time::from_millis(200)), 3e6);
        assert_eq!(fx.name(), "fixed");
    }

    #[test]
    fn naive_aimd_halves_on_loss() {
        let mut cc = NaiveAimd::new(4e6, 0.1e6, 10e6);
        let t = cc.on_feedback(&report(1, 9), Time::from_millis(100));
        assert_eq!(t, 2e6);
    }

    #[test]
    fn naive_aimd_adds_on_clean_report() {
        let mut cc = NaiveAimd::new(1e6, 0.1e6, 10e6);
        let t = cc.on_feedback(&report(0, 10), Time::from_millis(100));
        assert_eq!(t, 1.05e6);
    }

    #[test]
    fn naive_aimd_clamps() {
        let mut cc = NaiveAimd::new(0.2e6, 0.15e6, 0.3e6);
        cc.on_feedback(&report(1, 1), Time::from_millis(100));
        assert_eq!(cc.target_bps(), 0.15e6);
        for i in 0..20 {
            cc.on_feedback(&report(0, 10), Time::from_millis(200 + i));
        }
        assert_eq!(cc.target_bps(), 0.3e6);
    }
}
