//! BBR-style delivery-rate congestion control.
//!
//! Where GCC and NADA reason about *delay signals*, this controller
//! reasons about the *delivery rate*: each feedback report yields a
//! sample of bytes-ACKed over the arrival span, a windowed max-filter
//! over those samples estimates the bottleneck bandwidth (`btlbw`), and
//! the target is `btlbw × gain`.
//!
//! Gain cycling, after BBR's PROBE_BW phase: most of the time the gain
//! is 1.0 (cruise at the estimated bottleneck), and roughly once a
//! second the controller raises it to 1.25 for a couple of reports to
//! probe for freed-up capacity. If the probe finds headroom the max
//! filter latches the higher delivery rate and the cruise level rises;
//! if not, the samples stay put and the target falls back.
//!
//! Startup: until the delivery rate stops growing (three consecutive
//! probes with < 3% `btlbw` growth), the probe gain applies on every
//! report, compounding ~1.25× per report — the analogue of BBR's
//! STARTUP exponential search, tamed to the probe gain so the exit
//! dip is bounded by 1/1.25 = 0.8 of the peak.
//!
//! Deviations from BBR proper: no pacing (the pipeline's pacer owns
//! packet spacing), no PROBE_RTT / drain phases (this controller only
//! emits a rate target; it never builds an inflight bubble it must
//! drain), and the min-RTT filter tracks one-way delay as an
//! observability aid rather than a cwnd input.

use std::collections::VecDeque;

use ravel_net::FeedbackReport;
use ravel_sim::{Dur, Time};

use crate::CongestionController;

/// How long delivery-rate samples stay in the max filter.
const BTLBW_WINDOW: Dur = Dur::secs(2);
/// How often a probe cycle starts once startup has ended.
const PROBE_INTERVAL: Dur = Dur::secs(1);
/// How long the probe gain is held.
const PROBE_LEN: Dur = Dur::millis(250);
/// Gain applied while probing (and throughout startup).
const PROBE_GAIN: f64 = 1.25;
/// Gain applied while cruising.
const CRUISE_GAIN: f64 = 1.0;
/// Startup exits after this many probes without meaningful growth.
const STARTUP_FULL_COUNT: u32 = 3;
/// Minimum btlbw growth ratio that counts as "still filling the pipe".
const STARTUP_GROWTH: f64 = 1.03;

/// Configuration for [`Bbr`].
#[derive(Debug, Clone, Copy)]
pub struct BbrConfig {
    /// Initial target rate.
    pub start_bps: f64,
    /// Floor.
    pub min_bps: f64,
    /// Ceiling.
    pub max_bps: f64,
}

impl BbrConfig {
    /// Config with the repo-standard 150 kbps floor and 8 Mbps ceiling.
    pub fn new(start_bps: f64) -> BbrConfig {
        BbrConfig {
            start_bps,
            min_bps: 150_000.0,
            max_bps: 8e6,
        }
    }
}

/// BBR-style delivery-rate controller.
#[derive(Debug, Clone)]
pub struct Bbr {
    min_bps: f64,
    max_bps: f64,
    target_bps: f64,
    /// Delivery-rate samples `(taken_at, bps)`; max over the window is
    /// the bottleneck-bandwidth estimate.
    samples: VecDeque<(Time, f64)>,
    /// Minimum one-way delay observed (ms); BBR's RTprop analogue.
    rtprop_ms: f64,
    /// Still in the startup exponential search?
    startup: bool,
    /// btlbw at the last startup growth check.
    startup_prev_btlbw: f64,
    /// Consecutive startup checks without meaningful growth.
    startup_flat: u32,
    /// When the current/last probe started.
    probe_started: Option<Time>,
    reason: &'static str,
}

impl Bbr {
    /// Creates a BBR-style controller from `cfg`.
    pub fn new(cfg: BbrConfig) -> Bbr {
        assert!(
            cfg.min_bps > 0.0 && cfg.min_bps <= cfg.max_bps,
            "bad rate bounds"
        );
        Bbr {
            min_bps: cfg.min_bps,
            max_bps: cfg.max_bps,
            target_bps: cfg.start_bps.clamp(cfg.min_bps, cfg.max_bps),
            samples: VecDeque::new(),
            rtprop_ms: f64::INFINITY,
            startup: true,
            startup_prev_btlbw: 0.0,
            startup_flat: 0,
            probe_started: None,
            reason: "bbr-startup",
        }
    }

    /// The current bottleneck-bandwidth estimate, if any sample is live.
    pub fn btlbw_bps(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|&(_, bps)| bps)
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.max(s)))
            })
    }

    /// The minimum one-way delay seen so far (ms), if any.
    pub fn rtprop_ms(&self) -> Option<f64> {
        self.rtprop_ms.is_finite().then_some(self.rtprop_ms)
    }

    /// Whether the probe gain applies at `now`.
    fn gain(&mut self, now: Time) -> f64 {
        if self.startup {
            self.reason = "bbr-startup";
            return PROBE_GAIN;
        }
        match self.probe_started {
            Some(started) if now.saturating_since(started) < PROBE_LEN => {
                self.reason = "bbr-probe";
                PROBE_GAIN
            }
            Some(started) if now.saturating_since(started) < PROBE_INTERVAL => {
                self.reason = "bbr-cruise";
                CRUISE_GAIN
            }
            _ => {
                self.probe_started = Some(now);
                self.reason = "bbr-probe";
                PROBE_GAIN
            }
        }
    }
}

impl CongestionController for Bbr {
    fn on_feedback(&mut self, report: &FeedbackReport, now: Time) -> f64 {
        // Delivery-rate sample: bytes ACKed over the arrival span. A
        // degenerate report (under two arrivals) yields no sample; the
        // filter coasts on what it has.
        if let Some(rate) = report.delivered_rate_bps() {
            if rate.is_finite() && rate > 0.0 {
                // A burst draining a queue can momentarily "deliver"
                // far above the ceiling; cap the sample so one outlier
                // cannot wedge the max filter at the rail.
                self.samples.push_back((now, rate.min(self.max_bps)));
            }
        }
        while let Some(&(taken, _)) = self.samples.front() {
            if now.saturating_since(taken) > BTLBW_WINDOW {
                self.samples.pop_front();
            } else {
                break;
            }
        }
        for p in &report.packets {
            if let Some(arrival) = p.arrival {
                let owd = arrival.saturating_since(p.send_time).as_millis_f64();
                self.rtprop_ms = self.rtprop_ms.min(owd);
            }
        }

        // Startup exit: three consecutive reports where the bottleneck
        // estimate stopped growing mean the pipe is full.
        let btlbw = self.btlbw_bps();
        if self.startup {
            if let Some(bw) = btlbw {
                if bw < self.startup_prev_btlbw * STARTUP_GROWTH {
                    self.startup_flat += 1;
                    if self.startup_flat >= STARTUP_FULL_COUNT {
                        self.startup = false;
                        self.probe_started = Some(now);
                    }
                } else {
                    self.startup_flat = 0;
                    self.startup_prev_btlbw = bw;
                }
            }
        }

        let gain = self.gain(now);
        if let Some(bw) = btlbw {
            self.target_bps = (bw * gain).clamp(self.min_bps, self.max_bps);
        } else {
            // No live delivery evidence (e.g. blackout): hold the last
            // target; the session watchdog owns drastic action.
            self.reason = "bbr-hold";
        }
        self.target_bps
    }

    fn target_bps(&self) -> f64 {
        self.target_bps
    }

    fn name(&self) -> &'static str {
        "bbr"
    }

    fn decision_reason(&self) -> &'static str {
        self.reason
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ravel_net::PacketResult;

    /// A report whose arrival pattern implies a delivery rate of
    /// roughly `rate_bps` over a 100 ms span starting at `start_ms`.
    fn report_at_rate(first_seq: u64, start_ms: u64, rate_bps: f64) -> FeedbackReport {
        let n = 10u64;
        let bytes = (rate_bps / 8.0 * 0.1 / n as f64) as u64;
        let packets = (0..n)
            .map(|i| {
                let send = Time::from_millis(start_ms + i * 10);
                PacketResult {
                    seq: first_seq + i,
                    send_time: send,
                    arrival: Some(send + Dur::millis(20)),
                    size_bytes: bytes.max(1),
                }
            })
            .collect();
        FeedbackReport {
            report_seq: first_seq / n,
            generated_at: Time::from_millis(start_ms + 130),
            packets,
        }
    }

    /// A report where nothing arrived.
    fn blackout_report(first_seq: u64, start_ms: u64) -> FeedbackReport {
        let packets = (0..10u64)
            .map(|i| PacketResult {
                seq: first_seq + i,
                send_time: Time::from_millis(start_ms + i * 10),
                arrival: None,
                size_bytes: 0,
            })
            .collect();
        FeedbackReport {
            report_seq: first_seq / 10,
            generated_at: Time::from_millis(start_ms + 130),
            packets,
        }
    }

    #[test]
    fn latches_onto_delivery_rate() {
        let mut cc = Bbr::new(BbrConfig::new(500_000.0));
        let mut target = cc.target_bps();
        for i in 0..30u64 {
            let r = report_at_rate(i * 10, i * 100, 2e6);
            target = cc.on_feedback(&r, Time::from_millis((i + 1) * 100));
        }
        // Startup has exited; cruise/probe around the 2 Mbps estimate.
        let bw = cc.btlbw_bps().unwrap();
        assert!((1.6e6..=2.6e6).contains(&bw), "btlbw off: {bw}");
        assert!((1.6e6..=3.3e6).contains(&target), "target off: {target}");
    }

    #[test]
    fn startup_compounds_until_growth_stalls() {
        let mut cc = Bbr::new(BbrConfig::new(200_000.0));
        // The "link" echoes back whatever the controller asked for,
        // capped at 3 Mbps — delivery grows while the pipe fills.
        let mut target = cc.target_bps();
        for i in 0..40u64 {
            let r = report_at_rate(i * 10, i * 100, target.min(3e6));
            target = cc.on_feedback(&r, Time::from_millis((i + 1) * 100));
        }
        assert!(!cc.startup, "startup never exited");
        assert!(target >= 2.5e6, "never filled the pipe: {target}");
    }

    #[test]
    fn probe_cycles_after_startup() {
        let mut cc = Bbr::new(BbrConfig::new(1e6));
        let mut reasons = std::collections::BTreeSet::new();
        for i in 0..60u64 {
            let r = report_at_rate(i * 10, i * 100, 1e6);
            cc.on_feedback(&r, Time::from_millis((i + 1) * 100));
            reasons.insert(cc.decision_reason());
        }
        assert!(reasons.contains("bbr-probe"), "never probed: {reasons:?}");
        assert!(reasons.contains("bbr-cruise"), "never cruised: {reasons:?}");
    }

    #[test]
    fn step_drop_ages_out_of_the_max_filter() {
        let mut cc = Bbr::new(BbrConfig::new(1e6));
        for i in 0..30u64 {
            let r = report_at_rate(i * 10, i * 100, 4e6);
            cc.on_feedback(&r, Time::from_millis((i + 1) * 100));
        }
        // Capacity drops to 1 Mbps; within the 2 s window the old
        // samples expire and the target follows.
        let mut target = cc.target_bps();
        for i in 30..60u64 {
            let r = report_at_rate(i * 10, i * 100, 1e6);
            target = cc.on_feedback(&r, Time::from_millis((i + 1) * 100));
        }
        assert!(target <= 1.4e6, "stale max survived: {target}");
    }

    #[test]
    fn blackout_holds_then_recovers() {
        let mut cc = Bbr::new(BbrConfig::new(1e6));
        for i in 0..30u64 {
            let r = report_at_rate(i * 10, i * 100, 2e6);
            cc.on_feedback(&r, Time::from_millis((i + 1) * 100));
        }
        for i in 30..60u64 {
            let r = blackout_report(i * 10, i * 100);
            let t = cc.on_feedback(&r, Time::from_millis((i + 1) * 100));
            assert!(t.is_finite() && t >= 150_000.0);
        }
        assert_eq!(cc.decision_reason(), "bbr-hold");
        let mut target = cc.target_bps();
        for i in 60..90u64 {
            let r = report_at_rate(i * 10, i * 100, 2e6);
            target = cc.on_feedback(&r, Time::from_millis((i + 1) * 100));
        }
        assert!(target >= 1.6e6, "no recovery: {target}");
    }

    #[test]
    fn rate_stays_within_bounds() {
        let mut cc = Bbr::new(BbrConfig::new(4e6));
        for i in 0..100u64 {
            let r = report_at_rate(i * 10, i * 100, 50e6);
            let t = cc.on_feedback(&r, Time::from_millis((i + 1) * 100));
            assert!((150_000.0..=8e6).contains(&t), "out of bounds: {t}");
        }
    }
}
