//! The loss-based controller (GCC's second arm).
//!
//! Delay tells GCC about queue growth; loss tells it the queue already
//! overflowed. The classic GCC loss rules (per the RMCAT draft):
//!
//! * loss > 10%: `target ×= (1 − 0.5·loss)`
//! * 2% ≤ loss ≤ 10%: hold
//! * loss < 2%: `target ×= 1.05` (gentle probe)
//!
//! The final GCC target is the min of the delay-based and loss-based
//! estimates.

use ravel_sim::Time;

/// Loss-based target estimator.
#[derive(Debug, Clone)]
pub struct LossController {
    target_bps: f64,
    min_bps: f64,
    max_bps: f64,
    last_update: Option<Time>,
}

impl LossController {
    /// Creates a loss controller starting at `start_bps`.
    pub fn new(start_bps: f64, min_bps: f64, max_bps: f64) -> LossController {
        assert!(min_bps > 0.0 && min_bps <= max_bps, "bad rate bounds");
        LossController {
            target_bps: start_bps.clamp(min_bps, max_bps),
            min_bps,
            max_bps,
            last_update: None,
        }
    }

    /// The current loss-based target.
    pub fn target_bps(&self) -> f64 {
        self.target_bps
    }

    /// Updates from one report's loss fraction. Increases are rate
    /// limited to once per ~200 ms so bursts of reports don't compound.
    pub fn update(&mut self, loss_fraction: f64, now: Time) -> f64 {
        debug_assert!((0.0..=1.0).contains(&loss_fraction));
        if loss_fraction > 0.10 {
            self.target_bps *= 1.0 - 0.5 * loss_fraction;
            self.last_update = Some(now);
        } else if loss_fraction < 0.02 {
            let due = match self.last_update {
                Some(last) => now.saturating_since(last).as_millis_f64() >= 200.0,
                None => true,
            };
            if due {
                self.target_bps *= 1.05;
                self.last_update = Some(now);
            }
        } else {
            self.last_update = Some(now);
        }
        self.target_bps = self.target_bps.clamp(self.min_bps, self.max_bps);
        self.target_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    #[test]
    fn heavy_loss_cuts_rate() {
        let mut lc = LossController::new(2e6, 0.1e6, 10e6);
        let target = lc.update(0.2, t(100));
        assert!((target - 2e6 * 0.9).abs() < 1.0);
    }

    #[test]
    fn moderate_loss_holds() {
        let mut lc = LossController::new(2e6, 0.1e6, 10e6);
        let target = lc.update(0.05, t(100));
        assert_eq!(target, 2e6);
    }

    #[test]
    fn low_loss_probes_up() {
        let mut lc = LossController::new(2e6, 0.1e6, 10e6);
        let target = lc.update(0.0, t(100));
        assert!((target - 2.1e6).abs() < 1.0);
    }

    #[test]
    fn increase_is_rate_limited() {
        let mut lc = LossController::new(2e6, 0.1e6, 10e6);
        lc.update(0.0, t(100));
        let after = lc.update(0.0, t(150)); // only 50 ms later
        assert!((after - 2.1e6).abs() < 1.0, "compounded too fast: {after}");
        let later = lc.update(0.0, t(350));
        assert!(later > after);
    }

    #[test]
    fn clamped_to_bounds() {
        let mut lc = LossController::new(0.2e6, 0.1e6, 0.3e6);
        for i in 0..50 {
            lc.update(0.5, t(i * 100));
        }
        assert_eq!(lc.target_bps(), 0.1e6);
        let mut hi = LossController::new(0.29e6, 0.1e6, 0.3e6);
        for i in 0..50 {
            hi.update(0.0, t(i * 300));
        }
        assert_eq!(hi.target_bps(), 0.3e6);
    }
}
