//! Minimal JSON support for trace files and experiment reports.
//!
//! The workspace builds in offline environments, so instead of pulling
//! `serde_json` from the registry, trace (de)serialization — and the
//! `ravel-harness` benchmark report — uses this small recursive-descent
//! parser and writer. It covers the full JSON grammar (objects, arrays,
//! strings with escapes, numbers, literals) but keeps every number as
//! `f64`, which is exactly what both formats need.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as f64.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up `key` if the value is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes the value as compact JSON (object keys in insertion
    /// order, numbers via the shortest round-tripping `f64` form).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    // JSON has no NaN/inf; emit null rather than an
                    // unparsable token.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected character '{}' at byte {}",
                b as char, self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => {
                            return Err(format!(
                                "invalid escape '\\{}' at byte {}",
                                esc as char,
                                self.pos - 1
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str,
                    // so boundaries are valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")?;
        let text = std::str::from_utf8(slice).map_err(|_| "bad \\u escape".to_string())?;
        let code = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let first = self.hex4()?;
        // Surrogate pair: a high surrogate must be followed by \uDC00..
        let code = if (0xD800..0xDC00).contains(&first) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if !(0xDC00..0xE000).contains(&second) {
                    return Err("invalid low surrogate".into());
                }
                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
            } else {
                return Err("unpaired surrogate".into());
            }
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| "invalid unicode escape".into())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc =
            parse(r#"{"note": "x", "samples": [[0.0, 4e6], [10, 1e6]], "extra": null}"#).unwrap();
        assert_eq!(doc.get("note").and_then(Json::as_str), Some("x"));
        let samples = doc.get("samples").and_then(Json::as_array).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[1].as_array().unwrap()[1].as_f64(), Some(1e6));
    }

    #[test]
    fn parses_string_escapes() {
        let doc = parse(r#""a\"b\\c\nA😀""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\nA😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "not json",
            "{",
            "[1,",
            r#"{"a" 1}"#,
            "[1 2]",
            "1 2",
            r#""\q""#,
            "",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn write_string_escapes_and_roundtrips() {
        let original = "line\nquote\" back\\slash \t\u{0001}ünïcode";
        let mut out = String::new();
        write_string(&mut out, original);
        assert_eq!(parse(&out).unwrap().as_str(), Some(original));
    }

    #[test]
    fn render_roundtrips_documents() {
        let doc = parse(r#"{"a": [1, 2.5, null], "b": {"c": "x\ny", "d": true}}"#).unwrap();
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
        assert_eq!(text, r#"{"a":[1,2.5,null],"b":{"c":"x\ny","d":true}}"#);
    }

    #[test]
    fn render_maps_non_finite_numbers_to_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn numbers_roundtrip_via_display() {
        for x in [0.0, 0.5, -1.25, 4e6, 123456789.125, 1e-9] {
            let text = format!("{x}");
            assert_eq!(parse(&text).unwrap().as_f64(), Some(x));
        }
    }
}
