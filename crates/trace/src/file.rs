//! File-backed traces: replay externally captured capacity series.
//!
//! The on-disk format is deliberately simple JSON — an object with a
//! `samples` array of `[seconds, bits_per_second]` pairs — so traces
//! exported from mahimahi/pantheon-style capture tools convert with a
//! one-liner. Samples are interpreted as a step function (each rate holds
//! until the next sample). Parsing uses the crate-local JSON module, so
//! loading traces works in offline builds with no external dependencies.

use std::fmt;
use std::fs;
use std::path::Path;

use ravel_sim::Time;

use crate::json;
use crate::{BandwidthTrace, StepTrace};

/// Errors loading a trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// The file is not valid trace JSON.
    Parse(String),
    /// The file parsed but violates trace invariants.
    Invalid(String),
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file I/O error: {e}"),
            TraceFileError::Parse(e) => write!(f, "trace file parse error: {e}"),
            TraceFileError::Invalid(msg) => write!(f, "invalid trace file: {msg}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// A capacity trace loaded from (or saved to) a JSON file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileTrace {
    path: StepTrace,
    note: String,
}

impl FileTrace {
    /// Loads a trace from a JSON file.
    pub fn load(path: &Path) -> Result<FileTrace, TraceFileError> {
        let text = fs::read_to_string(path)?;
        FileTrace::from_json(&text)
    }

    /// Parses a trace from JSON text.
    pub fn from_json(text: &str) -> Result<FileTrace, TraceFileError> {
        let doc = json::parse(text).map_err(TraceFileError::Parse)?;
        let note = match doc.get("note") {
            None => String::new(),
            Some(v) => v
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| TraceFileError::Parse("\"note\" is not a string".into()))?,
        };
        let samples = doc
            .get("samples")
            .ok_or_else(|| TraceFileError::Parse("missing \"samples\" array".into()))?
            .as_array()
            .ok_or_else(|| TraceFileError::Parse("\"samples\" is not an array".into()))?;
        let mut pairs = Vec::with_capacity(samples.len());
        for sample in samples {
            let pair = sample.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                TraceFileError::Parse("sample is not a [seconds, bps] pair".into())
            })?;
            match (pair[0].as_f64(), pair[1].as_f64()) {
                (Some(s), Some(b)) => pairs.push((s, b)),
                _ => {
                    return Err(TraceFileError::Parse(
                        "sample entries must be numbers".into(),
                    ))
                }
            }
        }
        Ok(FileTrace {
            path: StepTrace::new(points_from_samples(&pairs)?),
            note,
        })
    }

    /// Builds a trace directly from `(seconds, bps)` samples (used by
    /// tools that synthesize traces and then save them). Samples are
    /// validated in place — a NaN or negative entry fails with the same
    /// descriptive `Invalid` error `from_json` gives, instead of being
    /// rendered to JSON first (where NaN is not even representable and
    /// used to surface as an opaque parse error).
    pub fn from_samples(note: &str, samples: &[(f64, f64)]) -> Result<FileTrace, TraceFileError> {
        Ok(FileTrace {
            path: StepTrace::new(points_from_samples(samples)?),
            note: note.to_string(),
        })
    }

    /// Serializes this trace to JSON.
    pub fn to_json(&self) -> String {
        let samples: Vec<(f64, f64)> = self
            .path
            .points()
            .iter()
            .map(|&(t, r)| (t.as_secs_f64(), r))
            .collect();
        render_json(&self.note, &samples)
    }

    /// Saves this trace to a JSON file.
    pub fn save(&self, path: &Path) -> Result<(), TraceFileError> {
        fs::write(path, self.to_json())?;
        Ok(())
    }

    /// The provenance note stored with the trace.
    pub fn note(&self) -> &str {
        &self.note
    }

    /// The underlying step path.
    pub fn path(&self) -> &StepTrace {
        &self.path
    }
}

/// Validates raw `(seconds, bps)` samples and converts them to step
/// points — the single checkpoint both `from_json` and `from_samples`
/// funnel through, so NaN/negative/unordered inputs fail with the same
/// descriptive errors no matter how the trace arrives.
fn points_from_samples(samples: &[(f64, f64)]) -> Result<Vec<(Time, f64)>, TraceFileError> {
    if samples.is_empty() {
        return Err(TraceFileError::Invalid("no samples".into()));
    }
    let mut points = Vec::with_capacity(samples.len());
    let mut last_us: Option<u64> = None;
    for &(secs, bps) in samples {
        if !secs.is_finite() || secs < 0.0 {
            return Err(TraceFileError::Invalid(format!("bad timestamp {secs}")));
        }
        if !bps.is_finite() || bps < 0.0 {
            return Err(TraceFileError::Invalid(format!("bad rate {bps}")));
        }
        let us = (secs * 1e6).round() as u64;
        if last_us.is_some_and(|prev| us <= prev) {
            return Err(TraceFileError::Invalid(
                "timestamps not strictly increasing".into(),
            ));
        }
        last_us = Some(us);
        points.push((Time::from_micros(us), bps));
    }
    Ok(points)
}

/// Renders the on-disk JSON form. `f64`'s `Display` prints the shortest
/// representation that parses back to the same value, so round-trips
/// are exact.
fn render_json(note: &str, samples: &[(f64, f64)]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"note\": ");
    json::write_string(&mut out, note);
    out.push_str(",\n  \"samples\": [\n");
    for (i, &(secs, bps)) in samples.iter().enumerate() {
        out.push_str("    [");
        out.push_str(&format!("{secs}, {bps}"));
        out.push(']');
        if i + 1 < samples.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

impl BandwidthTrace for FileTrace {
    fn rate_bps(&self, at: Time) -> f64 {
        self.path.rate_bps(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let t =
            FileTrace::from_samples("unit test", &[(0.0, 4e6), (10.0, 1e6), (30.0, 4e6)]).unwrap();
        let json = t.to_json();
        let t2 = FileTrace::from_json(&json).unwrap();
        assert_eq!(t, t2);
        assert_eq!(t2.note(), "unit test");
        assert_eq!(t2.rate_bps(Time::from_secs(15)), 1e6);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("ravel_trace_test.json");
        let t = FileTrace::from_samples("disk", &[(0.0, 2e6), (5.0, 1e6)]).unwrap();
        t.save(&path).unwrap();
        let t2 = FileTrace::load(&path).unwrap();
        assert_eq!(t, t2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_empty() {
        let err = FileTrace::from_json(r#"{"samples": []}"#).unwrap_err();
        assert!(matches!(err, TraceFileError::Invalid(_)));
    }

    #[test]
    fn rejects_unsorted() {
        let err = FileTrace::from_json(r#"{"samples": [[1.0, 5.0], [1.0, 6.0]]}"#).unwrap_err();
        assert!(err.to_string().contains("strictly increasing"));
    }

    #[test]
    fn rejects_negative_rate() {
        let err = FileTrace::from_json(r#"{"samples": [[0.0, -5.0]]}"#).unwrap_err();
        assert!(err.to_string().contains("bad rate"));
    }

    #[test]
    fn from_samples_rejects_non_finite_entries_descriptively() {
        // Regression: these used to take the JSON round-trip, where NaN
        // has no representation, and die with an opaque parse error.
        // Direct validation names the offending value.
        let err = FileTrace::from_samples("t", &[(0.0, f64::NAN)]).unwrap_err();
        assert!(err.to_string().contains("bad rate NaN"), "{err}");
        let err = FileTrace::from_samples("t", &[(0.0, f64::INFINITY)]).unwrap_err();
        assert!(err.to_string().contains("bad rate inf"), "{err}");
        let err = FileTrace::from_samples("t", &[(f64::NAN, 1e6)]).unwrap_err();
        assert!(err.to_string().contains("bad timestamp NaN"), "{err}");
        let err = FileTrace::from_samples("t", &[(-1.0, 1e6)]).unwrap_err();
        assert!(err.to_string().contains("bad timestamp -1"), "{err}");
        let err = FileTrace::from_samples("t", &[(0.0, -2.0)]).unwrap_err();
        assert!(err.to_string().contains("bad rate -2"), "{err}");
    }

    #[test]
    fn from_samples_matches_from_json_on_shared_invariants() {
        // Both entry points funnel through the same validator, so the
        // non-shape errors are word-for-word identical.
        let via_samples = FileTrace::from_samples("t", &[(1.0, 5.0), (1.0, 6.0)]).unwrap_err();
        let via_json =
            FileTrace::from_json(r#"{"samples": [[1.0, 5.0], [1.0, 6.0]]}"#).unwrap_err();
        assert_eq!(via_samples.to_string(), via_json.to_string());
        let via_samples = FileTrace::from_samples("t", &[]).unwrap_err();
        let via_json = FileTrace::from_json(r#"{"samples": []}"#).unwrap_err();
        assert_eq!(via_samples.to_string(), via_json.to_string());
    }

    #[test]
    fn rejects_bad_json() {
        let err = FileTrace::from_json("not json").unwrap_err();
        assert!(matches!(err, TraceFileError::Parse(_)));
    }

    #[test]
    fn rejects_wrong_shapes() {
        for bad in [
            r#"{"samples": 5}"#,
            r#"{"samples": [[1.0]]}"#,
            r#"{"samples": [[1.0, 2.0, 3.0]]}"#,
            r#"{"samples": [["a", 2.0]]}"#,
            r#"{"note": 7, "samples": [[0.0, 1.0]]}"#,
            r#"[1, 2]"#,
        ] {
            let err = FileTrace::from_json(bad).unwrap_err();
            assert!(matches!(err, TraceFileError::Parse(_)), "{bad}");
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = FileTrace::load(Path::new("/nonexistent/ravel.json")).unwrap_err();
        assert!(matches!(err, TraceFileError::Io(_)));
    }

    #[test]
    fn note_defaults_empty() {
        let t = FileTrace::from_json(r#"{"samples": [[0.0, 1.0]]}"#).unwrap();
        assert_eq!(t.note(), "");
    }

    #[test]
    fn note_with_special_characters_roundtrips() {
        let t = FileTrace::from_samples("a\"b\\c\nd", &[(0.0, 1.0)]).unwrap();
        let t2 = FileTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(t2.note(), "a\"b\\c\nd");
    }
}
