//! File-backed traces: replay externally captured capacity series.
//!
//! The on-disk format is deliberately simple JSON — an object with a
//! `samples` array of `[seconds, bits_per_second]` pairs — so traces
//! exported from mahimahi/pantheon-style capture tools convert with a
//! one-liner. Samples are interpreted as a step function (each rate holds
//! until the next sample).

use std::fmt;
use std::fs;
use std::path::Path;

use ravel_sim::Time;
use serde::{Deserialize, Serialize};

use crate::{BandwidthTrace, StepTrace};

/// Errors loading a trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// The file is not valid trace JSON.
    Parse(serde_json::Error),
    /// The file parsed but violates trace invariants.
    Invalid(String),
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file I/O error: {e}"),
            TraceFileError::Parse(e) => write!(f, "trace file parse error: {e}"),
            TraceFileError::Invalid(msg) => write!(f, "invalid trace file: {msg}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

impl From<serde_json::Error> for TraceFileError {
    fn from(e: serde_json::Error) -> Self {
        TraceFileError::Parse(e)
    }
}

/// Serialized form of a trace file.
#[derive(Debug, Serialize, Deserialize)]
struct TraceFile {
    /// Optional human-readable provenance note.
    #[serde(default)]
    note: String,
    /// `[seconds_from_start, bits_per_second]` pairs, strictly increasing
    /// in time.
    samples: Vec<(f64, f64)>,
}

/// A capacity trace loaded from (or saved to) a JSON file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileTrace {
    path: StepTrace,
    note: String,
}

impl FileTrace {
    /// Loads a trace from a JSON file.
    pub fn load(path: &Path) -> Result<FileTrace, TraceFileError> {
        let text = fs::read_to_string(path)?;
        FileTrace::from_json(&text)
    }

    /// Parses a trace from JSON text.
    pub fn from_json(text: &str) -> Result<FileTrace, TraceFileError> {
        let file: TraceFile = serde_json::from_str(text)?;
        if file.samples.is_empty() {
            return Err(TraceFileError::Invalid("no samples".into()));
        }
        let mut points = Vec::with_capacity(file.samples.len());
        let mut last_us: Option<u64> = None;
        for &(secs, bps) in &file.samples {
            if !secs.is_finite() || secs < 0.0 {
                return Err(TraceFileError::Invalid(format!("bad timestamp {secs}")));
            }
            if !bps.is_finite() || bps < 0.0 {
                return Err(TraceFileError::Invalid(format!("bad rate {bps}")));
            }
            let us = (secs * 1e6).round() as u64;
            if let Some(prev) = last_us {
                if us <= prev {
                    return Err(TraceFileError::Invalid(
                        "timestamps not strictly increasing".into(),
                    ));
                }
            }
            last_us = Some(us);
            points.push((Time::from_micros(us), bps));
        }
        Ok(FileTrace {
            path: StepTrace::new(points),
            note: file.note,
        })
    }

    /// Builds a trace directly from `(seconds, bps)` samples (used by
    /// tools that synthesize traces and then save them).
    pub fn from_samples(note: &str, samples: &[(f64, f64)]) -> Result<FileTrace, TraceFileError> {
        let file = TraceFile {
            note: note.to_owned(),
            samples: samples.to_vec(),
        };
        let json = serde_json::to_string(&file).expect("trace serialization is infallible");
        FileTrace::from_json(&json)
    }

    /// Serializes this trace to JSON.
    pub fn to_json(&self) -> String {
        let samples: Vec<(f64, f64)> = self
            .path
            .points()
            .iter()
            .map(|&(t, r)| (t.as_secs_f64(), r))
            .collect();
        let file = TraceFile {
            note: self.note.clone(),
            samples,
        };
        serde_json::to_string_pretty(&file).expect("trace serialization is infallible")
    }

    /// Saves this trace to a JSON file.
    pub fn save(&self, path: &Path) -> Result<(), TraceFileError> {
        fs::write(path, self.to_json())?;
        Ok(())
    }

    /// The provenance note stored with the trace.
    pub fn note(&self) -> &str {
        &self.note
    }

    /// The underlying step path.
    pub fn path(&self) -> &StepTrace {
        &self.path
    }
}

impl BandwidthTrace for FileTrace {
    fn rate_bps(&self, at: Time) -> f64 {
        self.path.rate_bps(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let t = FileTrace::from_samples(
            "unit test",
            &[(0.0, 4e6), (10.0, 1e6), (30.0, 4e6)],
        )
        .unwrap();
        let json = t.to_json();
        let t2 = FileTrace::from_json(&json).unwrap();
        assert_eq!(t, t2);
        assert_eq!(t2.note(), "unit test");
        assert_eq!(t2.rate_bps(Time::from_secs(15)), 1e6);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("ravel_trace_test.json");
        let t = FileTrace::from_samples("disk", &[(0.0, 2e6), (5.0, 1e6)]).unwrap();
        t.save(&path).unwrap();
        let t2 = FileTrace::load(&path).unwrap();
        assert_eq!(t, t2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_empty() {
        let err = FileTrace::from_json(r#"{"samples": []}"#).unwrap_err();
        assert!(matches!(err, TraceFileError::Invalid(_)));
    }

    #[test]
    fn rejects_unsorted() {
        let err =
            FileTrace::from_json(r#"{"samples": [[1.0, 5.0], [1.0, 6.0]]}"#).unwrap_err();
        assert!(err.to_string().contains("strictly increasing"));
    }

    #[test]
    fn rejects_negative_rate() {
        let err = FileTrace::from_json(r#"{"samples": [[0.0, -5.0]]}"#).unwrap_err();
        assert!(err.to_string().contains("bad rate"));
    }

    #[test]
    fn rejects_bad_json() {
        let err = FileTrace::from_json("not json").unwrap_err();
        assert!(matches!(err, TraceFileError::Parse(_)));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = FileTrace::load(Path::new("/nonexistent/ravel.json")).unwrap_err();
        assert!(matches!(err, TraceFileError::Io(_)));
    }

    #[test]
    fn note_defaults_empty() {
        let t = FileTrace::from_json(r#"{"samples": [[0.0, 1.0]]}"#).unwrap();
        assert_eq!(t.note(), "");
    }
}
