//! Seeded stochastic capacity traces with cellular-like statistics.
//!
//! Real RTC sessions ride on cellular or Wi-Fi links whose capacity is a
//! *sticky* random process: long stretches near a nominal rate, punctuated
//! by deep fades (handover, shadowing, contention) — exactly the sudden
//! drops the paper targets. [`StochasticTrace`] models this with a
//! Markov-modulated process: a small set of capacity states with dwell
//! times, plus multiplicative short-term noise.
//!
//! The whole path is sampled at construction from a seed, so
//! [`BandwidthTrace::rate_bps`] queries are pure and O(log n), and every
//! experiment replays bit-for-bit from its recorded seed.

use ravel_sim::{Dur, Rng, Time};

use crate::{BandwidthTrace, StepTrace};

/// Parameters of the Markov capacity model.
#[derive(Debug, Clone, PartialEq)]
pub struct CellularProfile {
    /// Capacity states in bits per second (e.g. good / degraded / fade).
    pub states_bps: Vec<f64>,
    /// Mean dwell time in each state (exponential); same length as
    /// `states_bps`.
    pub mean_dwell: Vec<Dur>,
    /// Row-stochastic transition matrix (self-transitions allowed but
    /// wasteful); `probs[i][j]` is P(next = j | current = i).
    pub transition: Vec<Vec<f64>>,
    /// Std-dev of multiplicative log-normal-ish noise applied per sample
    /// (0 disables noise).
    pub noise_rel_std: f64,
    /// Sample spacing of the precomputed path.
    pub sample_every: Dur,
}

impl CellularProfile {
    /// An LTE-like profile: mostly a 4 Mbps "good" state, a 2 Mbps
    /// "degraded" state, and a 0.8 Mbps "fade" state, with dwell times of
    /// a few seconds — the regime in which encoder-side adaptation matters.
    pub fn lte_like() -> CellularProfile {
        CellularProfile {
            states_bps: vec![4e6, 2e6, 0.8e6],
            mean_dwell: vec![Dur::secs(8), Dur::secs(3), Dur::secs(2)],
            transition: vec![
                vec![0.0, 0.7, 0.3],
                vec![0.6, 0.0, 0.4],
                vec![0.7, 0.3, 0.0],
            ],
            noise_rel_std: 0.05,
            sample_every: Dur::millis(100),
        }
    }

    /// A Wi-Fi-like profile: higher nominal rate, shallower but more
    /// frequent dips from contention.
    pub fn wifi_like() -> CellularProfile {
        CellularProfile {
            states_bps: vec![8e6, 5e6, 2.5e6],
            mean_dwell: vec![Dur::secs(5), Dur::secs(2), Dur::millis(1500)],
            transition: vec![
                vec![0.0, 0.8, 0.2],
                vec![0.7, 0.0, 0.3],
                vec![0.5, 0.5, 0.0],
            ],
            noise_rel_std: 0.08,
            sample_every: Dur::millis(100),
        }
    }

    fn validate(&self) {
        assert!(
            !self.states_bps.is_empty(),
            "CellularProfile: no capacity states"
        );
        for (i, &s) in self.states_bps.iter().enumerate() {
            assert!(
                s.is_finite() && s > 0.0,
                "CellularProfile: state {i} rate {s} is not a positive finite rate"
            );
        }
        assert_eq!(
            self.states_bps.len(),
            self.mean_dwell.len(),
            "CellularProfile: dwell/state length mismatch"
        );
        assert_eq!(
            self.states_bps.len(),
            self.transition.len(),
            "CellularProfile: transition/state length mismatch"
        );
        for (i, row) in self.transition.iter().enumerate() {
            assert_eq!(
                row.len(),
                self.states_bps.len(),
                "CellularProfile: transition row {i} wrong length"
            );
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9 || self.states_bps.len() == 1,
                "CellularProfile: transition row {i} sums to {sum}"
            );
        }
        assert!(
            !self.sample_every.is_zero(),
            "CellularProfile: zero sample step"
        );
    }
}

/// A precomputed stochastic capacity path.
///
/// ```
/// use ravel_sim::{Dur, Time};
/// use ravel_trace::{BandwidthTrace, CellularProfile, StochasticTrace};
///
/// let trace = StochasticTrace::generate(
///     &CellularProfile::lte_like(), Dur::secs(60), 42);
/// let rate = trace.rate_bps(Time::from_secs(30));
/// assert!(rate > 0.0);
/// // Same seed, same path — always.
/// let again = StochasticTrace::generate(
///     &CellularProfile::lte_like(), Dur::secs(60), 42);
/// assert_eq!(rate, again.rate_bps(Time::from_secs(30)));
/// ```
#[derive(Debug, Clone)]
pub struct StochasticTrace {
    /// The sampled path as a step trace (O(log n) lookup, pure queries).
    path: StepTrace,
    seed: u64,
}

impl StochasticTrace {
    /// Samples a path of length `duration` from `profile` using `seed`.
    /// Queries beyond `duration` hold the final sample.
    pub fn generate(profile: &CellularProfile, duration: Dur, seed: u64) -> StochasticTrace {
        profile.validate();
        let mut rng = Rng::substream(seed, 0xB44D);
        let mut state = 0usize;
        let mut state_until = Time::ZERO + sample_dwell(&mut rng, profile.mean_dwell[state]);

        let mut points = Vec::new();
        let mut t = Time::ZERO;
        let end = Time::ZERO + duration;
        while t < end {
            while t >= state_until {
                state = next_state(&mut rng, &profile.transition[state]);
                state_until += sample_dwell(&mut rng, profile.mean_dwell[state]);
            }
            let base = profile.states_bps[state];
            let noisy = if profile.noise_rel_std > 0.0 {
                (base * (1.0 + profile.noise_rel_std * rng.normal())).max(base * 0.2)
            } else {
                base
            };
            points.push((t, noisy));
            t += profile.sample_every;
        }
        StochasticTrace {
            path: StepTrace::new(points),
            seed,
        }
    }

    /// The seed this path was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The underlying sampled step path.
    pub fn path(&self) -> &StepTrace {
        &self.path
    }
}

fn sample_dwell(rng: &mut Rng, mean: Dur) -> Dur {
    // Exponential dwell, floored at one sample so states are observable.
    Dur::from_secs_f64(rng.exponential(mean.as_secs_f64())).max(Dur::millis(100))
}

fn next_state(rng: &mut Rng, row: &[f64]) -> usize {
    if row.len() == 1 {
        return 0;
    }
    let u = rng.uniform();
    let mut acc = 0.0;
    for (j, &p) in row.iter().enumerate() {
        acc += p;
        if u < acc {
            return j;
        }
    }
    row.len() - 1
}

impl BandwidthTrace for StochasticTrace {
    fn rate_bps(&self, at: Time) -> f64 {
        self.path.rate_bps(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_path() {
        let p = CellularProfile::lte_like();
        let a = StochasticTrace::generate(&p, Dur::secs(60), 7);
        let b = StochasticTrace::generate(&p, Dur::secs(60), 7);
        for s in (0..60_000).step_by(37) {
            let t = Time::from_millis(s);
            assert_eq!(a.rate_bps(t), b.rate_bps(t));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = CellularProfile::lte_like();
        let a = StochasticTrace::generate(&p, Dur::secs(60), 1);
        let b = StochasticTrace::generate(&p, Dur::secs(60), 2);
        let diffs = (0..600)
            .filter(|&i| {
                let t = Time::from_millis(i * 100);
                a.rate_bps(t) != b.rate_bps(t)
            })
            .count();
        assert!(diffs > 300, "only {diffs} samples differ");
    }

    #[test]
    fn rates_stay_positive_and_bounded() {
        let p = CellularProfile::lte_like();
        let t = StochasticTrace::generate(&p, Dur::secs(120), 3);
        for s in 0..1200 {
            let r = t.rate_bps(Time::from_millis(s * 100));
            assert!(r > 0.0, "non-positive rate {r}");
            assert!(r < 4e6 * 1.5, "implausible rate {r}");
        }
    }

    #[test]
    fn visits_multiple_states() {
        let p = CellularProfile::lte_like();
        let t = StochasticTrace::generate(&p, Dur::secs(300), 11);
        // Classify samples by nearest nominal state; all three states
        // should appear in a 5-minute path.
        let mut seen = [false; 3];
        for s in 0..3000 {
            let r = t.rate_bps(Time::from_millis(s * 100));
            let (idx, _) = p
                .states_bps
                .iter()
                .enumerate()
                .min_by(|a, b| (a.1 - r).abs().total_cmp(&(b.1 - r).abs()))
                .unwrap();
            seen[idx] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn holds_final_sample_beyond_duration() {
        let p = CellularProfile::wifi_like();
        let t = StochasticTrace::generate(&p, Dur::secs(10), 5);
        let at_end = t.rate_bps(Time::from_millis(9_900));
        assert_eq!(t.rate_bps(Time::from_secs(100)), at_end);
    }

    #[test]
    #[should_panic(expected = "transition row 0 sums")]
    fn bad_transition_matrix_panics() {
        let mut p = CellularProfile::lte_like();
        p.transition[0][1] = 0.2; // row no longer sums to 1
        StochasticTrace::generate(&p, Dur::secs(1), 0);
    }

    #[test]
    #[should_panic(expected = "state 1 rate NaN")]
    fn nan_state_rate_is_rejected_up_front() {
        // Regression: a NaN capacity state used to survive validation
        // and only blow up later in float comparisons (an opaque
        // `partial_cmp().unwrap()` panic); now it is rejected at
        // construction with a message naming the bad state.
        let mut p = CellularProfile::lte_like();
        p.states_bps[1] = f64::NAN;
        StochasticTrace::generate(&p, Dur::secs(1), 0);
    }

    #[test]
    #[should_panic(expected = "state 0 rate inf")]
    fn infinite_state_rate_is_rejected_up_front() {
        let mut p = CellularProfile::lte_like();
        p.states_bps[0] = f64::INFINITY;
        StochasticTrace::generate(&p, Dur::secs(1), 0);
    }

    #[test]
    fn nearest_state_classification_is_total_on_nan() {
        // The classifier used by these tests must not panic even when a
        // distance is NaN (total_cmp orders NaN instead of unwrapping).
        let states = [4e6, 2e6, f64::NAN];
        let r = 3.9e6;
        let (idx, _) = states
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - r).abs().total_cmp(&(b.1 - r).abs()))
            .unwrap();
        assert_eq!(idx, 0);
    }

    #[test]
    fn wifi_profile_validates() {
        let p = CellularProfile::wifi_like();
        let t = StochasticTrace::generate(&p, Dur::secs(30), 9);
        assert!(t.path().points().len() > 100);
        assert_eq!(t.seed(), 9);
    }
}
