//! Trace combinators: scale, clamp, shift, pointwise minimum.
//!
//! Combinators let experiments derive families of conditions from one base
//! trace — e.g. E4 sweeps drop magnitude by scaling the post-drop segment,
//! and cross-traffic is modelled as `MinOf(link, capacity_left)`.

use ravel_sim::{Dur, Time};

use crate::BandwidthTrace;

/// Multiplies an inner trace's rate by a constant factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scaled<T> {
    inner: T,
    factor: f64,
}

impl<T: BandwidthTrace> Scaled<T> {
    /// Wraps `inner`, multiplying all rates by `factor` (must be finite
    /// and non-negative).
    pub fn new(inner: T, factor: f64) -> Scaled<T> {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "Scaled: bad factor {factor}"
        );
        Scaled { inner, factor }
    }
}

impl<T: BandwidthTrace> BandwidthTrace for Scaled<T> {
    fn rate_bps(&self, at: Time) -> f64 {
        self.inner.rate_bps(at) * self.factor
    }
}

/// Clamps an inner trace's rate into `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clamped<T> {
    inner: T,
    lo: f64,
    hi: f64,
}

impl<T: BandwidthTrace> Clamped<T> {
    /// Wraps `inner`, clamping rates into `[lo, hi]`.
    pub fn new(inner: T, lo: f64, hi: f64) -> Clamped<T> {
        assert!(
            lo.is_finite() && hi.is_finite() && lo >= 0.0 && lo <= hi,
            "Clamped: bad range [{lo}, {hi}]"
        );
        Clamped { inner, lo, hi }
    }
}

impl<T: BandwidthTrace> BandwidthTrace for Clamped<T> {
    fn rate_bps(&self, at: Time) -> f64 {
        self.inner.rate_bps(at).clamp(self.lo, self.hi)
    }
}

/// Shifts an inner trace later in time: the inner t=0 maps to `offset`.
/// Queries before `offset` see the inner trace's t=0 rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shifted<T> {
    inner: T,
    offset: Dur,
}

impl<T: BandwidthTrace> Shifted<T> {
    /// Wraps `inner` delayed by `offset`.
    pub fn new(inner: T, offset: Dur) -> Shifted<T> {
        Shifted { inner, offset }
    }
}

impl<T: BandwidthTrace> BandwidthTrace for Shifted<T> {
    fn rate_bps(&self, at: Time) -> f64 {
        let inner_at = Time::from_micros(at.as_micros().saturating_sub(self.offset.as_micros()));
        self.inner.rate_bps(inner_at)
    }
}

/// Pointwise minimum of two traces — e.g. a physical link capacity and
/// "capacity left over by cross-traffic".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinOf<A, B> {
    a: A,
    b: B,
}

impl<A: BandwidthTrace, B: BandwidthTrace> MinOf<A, B> {
    /// Wraps `a` and `b`, returning the smaller rate at every instant.
    pub fn new(a: A, b: B) -> MinOf<A, B> {
        MinOf { a, b }
    }
}

impl<A: BandwidthTrace, B: BandwidthTrace> BandwidthTrace for MinOf<A, B> {
    fn rate_bps(&self, at: Time) -> f64 {
        self.a.rate_bps(at).min(self.b.rate_bps(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantTrace, StepTrace};

    #[test]
    fn scaled_multiplies() {
        let t = ConstantTrace::new(2e6).scaled(1.5);
        assert_eq!(t.rate_bps(Time::ZERO), 3e6);
    }

    #[test]
    #[should_panic(expected = "bad factor")]
    fn scaled_rejects_negative() {
        ConstantTrace::new(1.0).scaled(-1.0);
    }

    #[test]
    fn clamped_bounds() {
        let t = StepTrace::sudden_drop(4e6, 0.1e6, Time::from_secs(1)).clamped(0.5e6, 3e6);
        assert_eq!(t.rate_bps(Time::ZERO), 3e6);
        assert_eq!(t.rate_bps(Time::from_secs(2)), 0.5e6);
    }

    #[test]
    fn shifted_delays_breakpoints() {
        let t = StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10)).shifted(Dur::secs(5));
        assert_eq!(t.rate_bps(Time::from_secs(12)), 4e6); // drop now at 15s
        assert_eq!(t.rate_bps(Time::from_secs(15)), 1e6);
        // Before the offset we see the inner t=0 rate.
        assert_eq!(t.rate_bps(Time::from_secs(2)), 4e6);
    }

    #[test]
    fn min_of_takes_smaller() {
        let a = StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10));
        let b = ConstantTrace::new(2e6);
        let m = MinOf::new(a, b);
        assert_eq!(m.rate_bps(Time::from_secs(5)), 2e6);
        assert_eq!(m.rate_bps(Time::from_secs(15)), 1e6);
    }

    #[test]
    fn combinators_nest() {
        let t = StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10))
            .scaled(2.0)
            .clamped(0.0, 6e6)
            .shifted(Dur::secs(1));
        assert_eq!(t.rate_bps(Time::from_secs(5)), 6e6); // 8e6 clamped
        assert_eq!(t.rate_bps(Time::from_secs(11)), 2e6); // dropped, shifted
    }

    proptest::proptest! {
        /// Clamp output is always within bounds for arbitrary queries.
        #[test]
        fn clamp_invariant(ms in 0u64..100_000, lo in 0.0f64..2e6, width in 0.0f64..4e6) {
            let hi = lo + width;
            let t = StepTrace::sudden_drop(5e6, 0.2e6, Time::from_secs(10)).clamped(lo, hi);
            let r = t.rate_bps(Time::from_millis(ms));
            proptest::prop_assert!(r >= lo && r <= hi);
        }
    }
}
