//! Constant and piecewise-constant (step) traces.

use ravel_sim::{Dur, Time};

use crate::BandwidthTrace;

/// A link whose capacity never changes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantTrace {
    rate_bps: f64,
}

impl ConstantTrace {
    /// Creates a constant trace at `rate_bps` bits per second.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite rates.
    pub fn new(rate_bps: f64) -> ConstantTrace {
        assert!(
            rate_bps.is_finite() && rate_bps >= 0.0,
            "ConstantTrace: bad rate {rate_bps}"
        );
        ConstantTrace { rate_bps }
    }
}

impl BandwidthTrace for ConstantTrace {
    fn rate_bps(&self, _at: Time) -> f64 {
        self.rate_bps
    }

    fn mean_rate_bps(&self, _from: Time, _span: Dur, _step: Dur) -> f64 {
        self.rate_bps
    }
}

/// A piecewise-constant capacity defined by breakpoints.
///
/// Each breakpoint `(t, r)` means "from instant `t` onward, capacity is
/// `r` bps" until the next breakpoint. Queries before the first
/// breakpoint return the first rate.
///
/// ```
/// use ravel_sim::Time;
/// use ravel_trace::{BandwidthTrace, StepTrace};
///
/// let t = StepTrace::new(vec![
///     (Time::ZERO, 4e6),
///     (Time::from_secs(10), 1e6),
///     (Time::from_secs(30), 4e6),
/// ]);
/// assert_eq!(t.rate_bps(Time::from_secs(5)), 4e6);
/// assert_eq!(t.rate_bps(Time::from_secs(10)), 1e6);
/// assert_eq!(t.rate_bps(Time::from_secs(40)), 4e6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StepTrace {
    /// Strictly increasing breakpoint times with their rates.
    points: Vec<(Time, f64)>,
}

impl StepTrace {
    /// Creates a step trace from breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, times are not strictly increasing, or
    /// any rate is negative/non-finite.
    pub fn new(points: Vec<(Time, f64)>) -> StepTrace {
        assert!(!points.is_empty(), "StepTrace: no breakpoints");
        for pair in points.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "StepTrace: breakpoints must be strictly increasing"
            );
        }
        for &(_, r) in &points {
            assert!(r.is_finite() && r >= 0.0, "StepTrace: bad rate {r}");
        }
        StepTrace { points }
    }

    /// The canonical single sudden drop: `before` bps until `drop_at`,
    /// then `after` bps forever.
    pub fn sudden_drop(before: f64, after: f64, drop_at: Time) -> StepTrace {
        assert!(
            drop_at > Time::ZERO,
            "sudden_drop: drop at t=0 is a constant"
        );
        StepTrace::new(vec![(Time::ZERO, before), (drop_at, after)])
    }

    /// A drop followed by recovery: `before` until `drop_at`, `during`
    /// until `recover_at`, then `before` again.
    pub fn drop_and_recover(
        before: f64,
        during: f64,
        drop_at: Time,
        recover_at: Time,
    ) -> StepTrace {
        assert!(drop_at < recover_at, "drop_and_recover: empty drop window");
        StepTrace::new(vec![
            (Time::ZERO, before),
            (drop_at, during),
            (recover_at, before),
        ])
    }

    /// A staircase descending from `start` to `end` in `steps` equal-rate
    /// steps of `step_len` each, beginning at `first_at`. Models the
    /// progressive degradation of a fading wireless link.
    pub fn staircase_down(
        start: f64,
        end: f64,
        steps: usize,
        first_at: Time,
        step_len: Dur,
    ) -> StepTrace {
        assert!(steps >= 1, "staircase_down: zero steps");
        let mut points = vec![(Time::ZERO, start)];
        for i in 0..steps {
            let frac = (i + 1) as f64 / steps as f64;
            let rate = start + (end - start) * frac;
            points.push((first_at + step_len * i as u64, rate));
        }
        StepTrace::new(points)
    }

    /// The breakpoints of this trace.
    pub fn points(&self) -> &[(Time, f64)] {
        &self.points
    }

    /// The instant of the largest downward capacity step, if any step is
    /// downward. Experiments use this to align measurement windows.
    pub fn largest_drop_at(&self) -> Option<Time> {
        self.points
            .windows(2)
            .filter(|p| p[1].1 < p[0].1)
            .max_by(|a, b| {
                let da = a[0].1 - a[1].1;
                let db = b[0].1 - b[1].1;
                da.partial_cmp(&db).expect("rates are finite")
            })
            .map(|p| p[1].0)
    }
}

impl BandwidthTrace for StepTrace {
    fn rate_bps(&self, at: Time) -> f64 {
        // partition_point returns the index of the first breakpoint after
        // `at`; the active rate is the breakpoint before it.
        let idx = self.points.partition_point(|&(t, _)| t <= at);
        if idx == 0 {
            self.points[0].1
        } else {
            self.points[idx - 1].1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let c = ConstantTrace::new(5e6);
        assert_eq!(c.rate_bps(Time::ZERO), 5e6);
        assert_eq!(c.rate_bps(Time::from_secs(1000)), 5e6);
        assert_eq!(c.mean_rate_bps(Time::ZERO, Dur::secs(10), Dur::SECOND), 5e6);
    }

    #[test]
    #[should_panic(expected = "bad rate")]
    fn constant_rejects_negative() {
        ConstantTrace::new(-1.0);
    }

    #[test]
    fn step_lookup_boundaries() {
        let t = StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10));
        assert_eq!(t.rate_bps(Time::ZERO), 4e6);
        assert_eq!(t.rate_bps(Time::from_micros(9_999_999)), 4e6);
        assert_eq!(t.rate_bps(Time::from_secs(10)), 1e6);
        assert_eq!(t.rate_bps(Time::from_secs(11)), 1e6);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn step_rejects_unsorted() {
        StepTrace::new(vec![(Time::from_secs(5), 1.0), (Time::from_secs(5), 2.0)]);
    }

    #[test]
    #[should_panic(expected = "no breakpoints")]
    fn step_rejects_empty() {
        StepTrace::new(vec![]);
    }

    #[test]
    fn drop_and_recover_shape() {
        let t = StepTrace::drop_and_recover(4e6, 1e6, Time::from_secs(10), Time::from_secs(20));
        assert_eq!(t.rate_bps(Time::from_secs(5)), 4e6);
        assert_eq!(t.rate_bps(Time::from_secs(15)), 1e6);
        assert_eq!(t.rate_bps(Time::from_secs(25)), 4e6);
    }

    #[test]
    fn staircase_descends_monotonically() {
        let t = StepTrace::staircase_down(4e6, 1e6, 3, Time::from_secs(10), Dur::secs(2));
        assert_eq!(t.rate_bps(Time::from_secs(9)), 4e6);
        assert_eq!(t.rate_bps(Time::from_secs(10)), 3e6);
        assert_eq!(t.rate_bps(Time::from_secs(12)), 2e6);
        assert_eq!(t.rate_bps(Time::from_secs(14)), 1e6);
        assert_eq!(t.rate_bps(Time::from_secs(100)), 1e6);
    }

    #[test]
    fn largest_drop_at_finds_deepest_step() {
        let t = StepTrace::new(vec![
            (Time::ZERO, 4e6),
            (Time::from_secs(5), 3e6),  // -1M
            (Time::from_secs(10), 1e6), // -2M <- largest
            (Time::from_secs(20), 4e6), // up
        ]);
        assert_eq!(t.largest_drop_at(), Some(Time::from_secs(10)));
        let flat = ConstantTrace::new(1.0);
        let _ = flat; // constant trace has no drops by construction
        let up_only = StepTrace::new(vec![(Time::ZERO, 1e6), (Time::from_secs(1), 2e6)]);
        assert_eq!(up_only.largest_drop_at(), None);
    }

    proptest::proptest! {
        /// The step-lookup must agree with a linear scan for any query.
        #[test]
        fn lookup_matches_linear_scan(query_ms in 0u64..120_000) {
            let t = StepTrace::new(vec![
                (Time::ZERO, 4e6),
                (Time::from_secs(10), 1e6),
                (Time::from_secs(30), 2e6),
                (Time::from_secs(60), 0.5e6),
            ]);
            let at = Time::from_millis(query_ms);
            let mut expected = 4e6;
            for &(bp, r) in t.points() {
                if at >= bp {
                    expected = r;
                }
            }
            proptest::prop_assert_eq!(t.rate_bps(at), expected);
        }
    }
}
