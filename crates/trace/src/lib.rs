//! # ravel-trace — network bandwidth traces
//!
//! The poster's subject is the *sudden bandwidth drop*: the bottleneck
//! capacity falls by 2–8× within one RTT, long before the sender's
//! congestion controller or encoder can react. This crate supplies the
//! capacity processes the experiments run over:
//!
//! * [`ConstantTrace`] — a fixed-rate link (sanity baselines).
//! * [`StepTrace`] — piecewise-constant capacity from explicit
//!   breakpoints; [`StepTrace::sudden_drop`] builds the canonical
//!   E1 "4 Mbps → 1 Mbps at t=10 s" shape.
//! * [`OscillatingTrace`] — square- or sine-wave capacity for
//!   oscillation/convergence tests.
//! * [`StochasticTrace`] — a seeded Markov-modulated process reproducing
//!   the statistics of cellular (LTE-like) capacity series: sticky states
//!   with occasional deep fades. The path is *precomputed* at
//!   construction, so queries are pure functions of time and every run
//!   replays exactly.
//! * [`FileTrace`] — `(seconds, bits-per-second)` samples loaded from a
//!   JSON file, for replaying externally captured traces.
//!
//! Combinators ([`Scaled`], [`Clamped`], [`Shifted`], [`MinOf`]) compose
//! traces without allocation at query time.
//!
//! All rates are in bits per second (`f64`); all queries take a
//! [`ravel_sim::Time`] and are `O(log n)` or better.

#![warn(missing_docs)]

pub mod combinators;
pub mod file;
pub mod json;
pub mod oscillating;
pub mod step;
pub mod stochastic;

pub use combinators::{Clamped, MinOf, Scaled, Shifted};
pub use file::{FileTrace, TraceFileError};
pub use oscillating::{OscillatingTrace, Waveform};
pub use step::{ConstantTrace, StepTrace};
pub use stochastic::{CellularProfile, StochasticTrace};

use ravel_sim::{Dur, Time};

/// A bottleneck-capacity process: bits per second as a function of time.
///
/// Implementations must be pure: the same `at` always returns the same
/// rate. Stochastic traces achieve this by sampling their whole path up
/// front from a seed.
pub trait BandwidthTrace {
    /// Capacity in bits per second at instant `at`. Must be finite and
    /// non-negative.
    fn rate_bps(&self, at: Time) -> f64;

    /// The mean rate over `[from, from + span)`, approximated by sampling
    /// at `step` intervals. Implementations with closed forms may
    /// override.
    fn mean_rate_bps(&self, from: Time, span: Dur, step: Dur) -> f64 {
        assert!(!step.is_zero(), "mean_rate_bps: zero step");
        let mut t = from;
        let end = from + span;
        let mut sum = 0.0;
        let mut n = 0u64;
        while t < end {
            sum += self.rate_bps(t);
            n += 1;
            t += step;
        }
        if n == 0 {
            self.rate_bps(from)
        } else {
            sum / n as f64
        }
    }

    /// Wraps `self` so that all rates are multiplied by `factor`.
    fn scaled(self, factor: f64) -> Scaled<Self>
    where
        Self: Sized,
    {
        Scaled::new(self, factor)
    }

    /// Wraps `self` so that rates are clamped into `[lo, hi]`.
    fn clamped(self, lo: f64, hi: f64) -> Clamped<Self>
    where
        Self: Sized,
    {
        Clamped::new(self, lo, hi)
    }

    /// Wraps `self` shifted later in time by `offset` (the trace's t=0
    /// maps to simulation time `offset`; earlier queries see the t=0 rate).
    fn shifted(self, offset: Dur) -> Shifted<Self>
    where
        Self: Sized,
    {
        Shifted::new(self, offset)
    }
}

/// Blanket impl so `&T` traces compose.
impl<T: BandwidthTrace + ?Sized> BandwidthTrace for &T {
    fn rate_bps(&self, at: Time) -> f64 {
        (**self).rate_bps(at)
    }
}

/// Blanket impl so boxed trait objects are traces too.
impl<T: BandwidthTrace + ?Sized> BandwidthTrace for Box<T> {
    fn rate_bps(&self, at: Time) -> f64 {
        (**self).rate_bps(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanket_impls_delegate() {
        let c = ConstantTrace::new(2e6);
        let r: &dyn BandwidthTrace = &c;
        assert_eq!(r.rate_bps(Time::ZERO), 2e6);
        let b: Box<dyn BandwidthTrace> = Box::new(ConstantTrace::new(3e6));
        assert_eq!(b.rate_bps(Time::from_secs(5)), 3e6);
    }

    #[test]
    fn default_mean_rate_samples() {
        let t = StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10));
        // Over [5s, 15s): 5s at 4 Mbps then 5s at 1 Mbps -> mean 2.5 Mbps.
        let mean = t.mean_rate_bps(Time::from_secs(5), Dur::secs(10), Dur::millis(100));
        assert!((mean - 2.5e6).abs() < 0.05e6, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "zero step")]
    fn mean_rate_zero_step_panics() {
        // StepTrace uses the default mean_rate_bps implementation, which
        // guards against a zero sampling step. (ConstantTrace overrides it
        // with a closed form and never samples.)
        StepTrace::sudden_drop(2.0, 1.0, Time::from_secs(1)).mean_rate_bps(
            Time::ZERO,
            Dur::SECOND,
            Dur::ZERO,
        );
    }
}
