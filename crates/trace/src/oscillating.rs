//! Periodic capacity traces for oscillation and convergence experiments.

use std::f64::consts::TAU;

use ravel_sim::{Dur, Time};

use crate::BandwidthTrace;

/// The shape of one oscillation period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Waveform {
    /// High for the first half of the period, low for the second half.
    Square,
    /// Smooth sinusoid between low and high.
    Sine,
    /// Linear ramp high→low→high (triangle).
    Triangle,
}

/// A capacity that oscillates between `low` and `high` with a fixed period.
///
/// Square waves model periodic cross-traffic (e.g. a backup job); sine
/// waves model slow fading. The trace is deterministic and phase-aligned
/// to t=0 (a period starts high).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OscillatingTrace {
    low: f64,
    high: f64,
    period: Dur,
    waveform: Waveform,
}

impl OscillatingTrace {
    /// Creates an oscillating trace.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`, rates are negative/non-finite, or the
    /// period is zero.
    pub fn new(low: f64, high: f64, period: Dur, waveform: Waveform) -> OscillatingTrace {
        assert!(
            low.is_finite() && high.is_finite() && low >= 0.0 && low <= high,
            "OscillatingTrace: bad range [{low}, {high}]"
        );
        assert!(!period.is_zero(), "OscillatingTrace: zero period");
        OscillatingTrace {
            low,
            high,
            period,
            waveform,
        }
    }

    /// Phase within the current period, in `[0, 1)`.
    fn phase(&self, at: Time) -> f64 {
        let within = Dur::micros(at.as_micros() % self.period.as_micros());
        within / self.period
    }
}

impl BandwidthTrace for OscillatingTrace {
    fn rate_bps(&self, at: Time) -> f64 {
        let phase = self.phase(at);
        match self.waveform {
            Waveform::Square => {
                if phase < 0.5 {
                    self.high
                } else {
                    self.low
                }
            }
            Waveform::Sine => {
                let mid = (self.high + self.low) / 2.0;
                let amp = (self.high - self.low) / 2.0;
                mid + amp * (TAU * phase).cos()
            }
            Waveform::Triangle => {
                // high at phase 0, low at phase 0.5, back to high at 1.
                let dist = (phase - 0.5).abs() * 2.0; // 1 at edges, 0 at middle
                self.low + (self.high - self.low) * dist
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_alternates() {
        let t = OscillatingTrace::new(1e6, 4e6, Dur::secs(10), Waveform::Square);
        assert_eq!(t.rate_bps(Time::from_secs(1)), 4e6);
        assert_eq!(t.rate_bps(Time::from_secs(6)), 1e6);
        assert_eq!(t.rate_bps(Time::from_secs(11)), 4e6);
        assert_eq!(t.rate_bps(Time::from_secs(16)), 1e6);
    }

    #[test]
    fn sine_peaks_at_period_start() {
        let t = OscillatingTrace::new(1e6, 4e6, Dur::secs(10), Waveform::Sine);
        assert!((t.rate_bps(Time::ZERO) - 4e6).abs() < 1.0);
        assert!((t.rate_bps(Time::from_secs(5)) - 1e6).abs() < 1.0);
        // Quarter period: midpoint.
        assert!((t.rate_bps(Time::from_millis(2500)) - 2.5e6).abs() < 1e3);
    }

    #[test]
    fn triangle_hits_extremes() {
        let t = OscillatingTrace::new(1e6, 4e6, Dur::secs(10), Waveform::Triangle);
        assert!((t.rate_bps(Time::ZERO) - 4e6).abs() < 1.0);
        assert!((t.rate_bps(Time::from_secs(5)) - 1e6).abs() < 1.0);
        assert!((t.rate_bps(Time::from_millis(2500)) - 2.5e6).abs() < 1e3);
    }

    #[test]
    fn all_waveforms_stay_in_range() {
        for wf in [Waveform::Square, Waveform::Sine, Waveform::Triangle] {
            let t = OscillatingTrace::new(1e6, 4e6, Dur::millis(700), wf);
            for ms in (0..5000).step_by(13) {
                let r = t.rate_bps(Time::from_millis(ms));
                assert!(
                    (1e6 - 1e-6..=4e6 + 1e-6).contains(&r),
                    "{wf:?} out of range at {ms}ms: {r}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero period")]
    fn zero_period_panics() {
        OscillatingTrace::new(1.0, 2.0, Dur::ZERO, Waveform::Square);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn inverted_range_panics() {
        OscillatingTrace::new(2.0, 1.0, Dur::SECOND, Waveform::Square);
    }
}
