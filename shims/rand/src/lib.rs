//! Vendored stand-in for the subset of the `rand` 0.8 API this
//! workspace consumes.
//!
//! The build environment has no registry access, so instead of pulling
//! `rand` from crates.io we vendor the one trait the codebase actually
//! uses: [`RngCore`], implemented by `ravel-sim`'s own xoshiro256**
//! generator so it composes with generic `RngCore` consumers. The
//! trait signatures match `rand` 0.8 exactly; swapping the real crate
//! back in is a one-line manifest change.

use std::fmt;

/// Error type carried by [`RngCore::try_fill_bytes`].
///
/// Deterministic in-memory generators never fail, so this is an empty
/// marker matching `rand::Error`'s role in the 0.8 API.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core trait implemented by random number generators.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fills `dest` with random bytes, reporting failure as an error.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = self.next_u64() as u8;
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn trait_is_object_safe_and_usable() {
        let mut rng: Box<dyn RngCore> = Box::new(Counter(0));
        assert_eq!(rng.next_u64(), 1);
        assert_eq!(rng.next_u32(), 2);
        let mut buf = [0u8; 4];
        rng.try_fill_bytes(&mut buf).unwrap();
        assert_eq!(buf, [3, 4, 5, 6]);
        assert!(format!("{Error}").contains("random"));
    }
}
