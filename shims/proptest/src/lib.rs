//! Vendored stand-in for the subset of the `proptest` 1.x API this
//! workspace consumes.
//!
//! The build environment has no registry access, so the property tests
//! link against this minimal re-implementation instead of crates.io
//! proptest. It keeps the same surface — the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assume!`] macros, the [`Strategy`] trait
//! with `prop_map`, range and tuple strategies, and
//! [`collection::vec`] / [`collection::btree_set`] — so test sources
//! are unchanged and the real crate can be swapped back in with a
//! one-line manifest change.
//!
//! Differences from real proptest, by design:
//! - no shrinking: a failing case prints the generated input verbatim;
//! - the case seed is derived deterministically from the test name, so
//!   every run explores the same inputs (good for CI reproducibility);
//! - fewer cases by default (64 vs 256) to keep tier-1 test time low.

use std::fmt;

pub mod collection;
pub mod prelude;

/// Deterministic xoshiro256** generator used to produce test cases.
///
/// Standalone copy of the same algorithm `ravel-sim` uses, so this
/// crate stays dependency-free (it sits below `ravel-sim` in the
/// dependency graph for some consumers).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the full 256-bit state from one u64 via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range handed to TestRng::below");
        // Widening-multiply range reduction; bias is negligible for
        // test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Returns a uniform f64 in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty integer range strategy {:?}",
                        self
                    );
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(
            self.start < self.end,
            "empty float range strategy {:?}",
            self
        );
        self.start + (self.end - self.start) * rng.uniform()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.uniform() as f32
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per property.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (not a failure).
    Reject,
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => f.write_str("rejected by prop_assume!"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Outcome of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Drives one property: generates cases until `config.cases` pass or
/// one fails. The seed is derived from `name`, so runs are repeatable.
///
/// This is the engine behind the [`proptest!`] macro; call sites never
/// invoke it directly.
pub fn run_property<V: fmt::Debug>(
    config: &ProptestConfig,
    name: &str,
    generate: &dyn Fn(&mut TestRng) -> V,
    check: &dyn Fn(V) -> TestCaseResult,
) {
    let mut rng = TestRng::seed_from_u64(fnv1a(name.as_bytes()));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let value = generate(&mut rng);
        let repr = format!("{value:?}");
        match check(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "property '{name}': too many cases rejected by prop_assume! ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property '{name}' failed after {passed} passing case(s): {msg}\n    input: {repr}"
                );
            }
        }
    }
}

/// Declares property tests: `fn name(binding in strategy, ...) { body }`.
///
/// Mirrors proptest's macro for the forms used in this workspace,
/// including an optional leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)+
    ) => {
        $crate::__proptest_cases! { ($config) $($rest)+ }
    };
    ( $($rest:tt)+ ) => {
        $crate::__proptest_cases! { ($crate::ProptestConfig::default()) $($rest)+ }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($binding:pat in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(
                    &config,
                    stringify!($name),
                    &|rng| ($($crate::Strategy::generate(&($strategy), rng),)+),
                    &|values| {
                        let ($($binding,)+) = values;
                        $body
                        Ok(())
                    },
                );
            }
        )+
    };
}

/// Like `assert!`, but fails the current case instead of panicking
/// directly (the runner attaches the generated input to the panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, but fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        left,
                        right
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        left,
                        right
                    )));
                }
            }
        }
    };
}

/// Discards the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::seed_from_u64(7);
        let mut b = TestRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&i));
            let f = (-2.0f64..3.5).generate(&mut rng);
            assert!((-2.0..3.5).contains(&f));
            let (a, b) = ((0u64..4), (1.0f64..2.0)).generate(&mut rng);
            assert!(a < 4 && (1.0..2.0).contains(&b));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = TestRng::seed_from_u64(2);
        let doubled = (1u64..10).prop_map(|x| x * 2).generate(&mut rng);
        assert!(doubled % 2 == 0 && (2..20).contains(&doubled));
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 32,
            ..ProptestConfig::default()
        })]

        #[test]
        fn macro_binds_and_asserts(a in 0u64..100, b in 0.0f64..1.0) {
            crate::prop_assume!(a > 0);
            crate::prop_assert!(a < 100, "a out of range: {a}");
            crate::prop_assert_eq!(a, a);
            crate::prop_assert!((0.0..1.0).contains(&b));
        }

        #[test]
        fn macro_handles_mut_and_collections(
            mut xs in crate::collection::vec(0u64..50, 1..20),
        ) {
            xs.sort_unstable();
            crate::prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics_with_input() {
        run_property(
            &ProptestConfig {
                cases: 4,
                ..ProptestConfig::default()
            },
            "always_fails",
            &|rng| rng.below(10),
            &|v| {
                prop_assert!(v > 100, "v too small: {v}");
                Ok(())
            },
        );
    }
}
