//! Glob-importable prelude matching `proptest::prelude::*` for the
//! names this workspace uses.

pub use crate::{
    prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    TestCaseResult,
};
