//! Collection strategies: `vec` and `btree_set`.

use crate::{Strategy, TestRng};
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors whose elements come from `element` and whose
/// length lies in `size` (half-open, like proptest's `1..80`).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` targeting a size drawn from `size`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates ordered sets; if the element domain is too small to reach
/// the drawn size, the set saturates at what the domain allows.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(size.start < size.end, "empty btree_set size range");
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let target = self.size.start + rng.below(span) as usize;
        let mut set = BTreeSet::new();
        // Bounded attempts so a small element domain cannot loop forever.
        let max_attempts = target * 30 + 100;
        for _ in 0..max_attempts {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_bounds() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = vec(0u64..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_set_is_deduplicated_and_bounded() {
        let mut rng = TestRng::seed_from_u64(4);
        for _ in 0..100 {
            let s = btree_set(0u64..200, 1..120).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 120);
            assert!(s.iter().all(|&x| x < 200));
        }
    }

    #[test]
    fn btree_set_saturates_small_domains() {
        let mut rng = TestRng::seed_from_u64(5);
        let s = btree_set(0u64..3, 100..101).generate(&mut rng);
        assert!(s.len() <= 3);
    }
}
