//! Vendored stand-in for the subset of the `criterion` 0.5 API this
//! workspace consumes.
//!
//! The build environment has no registry access, so the two benches
//! that use Criterion (`e1_headline_latency`, `e10_overhead`) link
//! against this minimal wall-clock harness instead. It mirrors the
//! `Criterion` / `benchmark_group` / `Bencher::iter` surface and the
//! `criterion_group!` / `criterion_main!` macros, reporting mean
//! wall-clock time per iteration. It does no statistical analysis —
//! numbers are indicative, not publication-grade.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Prints a trailing summary (no-op placeholder).
    pub fn final_summary(&self) {}

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: self.default_sample_size,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        // One untimed warm-up pass, then the timed samples.
        let mut warmup = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut warmup);
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iterations.max(1) as f64;
        println!(
            "  {name}: {:.3} ms/iter over {} iters",
            per_iter * 1e3,
            b.iterations
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A hint to the optimizer not to fold the value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut runs = 0u64;
        g.sample_size(5).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        // 1 warm-up pass + 5 timed samples.
        assert_eq!(runs, 6);
    }
}
