//! # ravel — Rapid Adaptive Video Encoding for Latency-critical RTC
//!
//! A full reproduction of *"Adaptive Video Encoder for Network Bandwidth
//! Drops in Real-Time Communication"* (Meng, Huang & Meng, HKUST —
//! SIGCOMM 2025 Posters & Demos): a sender-side controller that makes a
//! software video encoder adapt to sudden bandwidth drops within one
//! frame of feedback, plus every substrate needed to evaluate it — an
//! x264-behavioural encoder model, a GCC congestion-control port, an
//! RTP-like transport with a bottleneck-link simulator, synthetic video
//! sources, and a deterministic discrete-event kernel.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! namespace and hosts the runnable examples and cross-crate
//! integration tests.
//!
//! ## Quickstart
//!
//! ```
//! use ravel::pipeline::{run_session, Scheme, SessionConfig};
//! use ravel::sim::{Dur, Time};
//! use ravel::trace::StepTrace;
//!
//! // A 4 Mbps link that drops to 1 Mbps at t = 10 s.
//! let trace = StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10));
//!
//! let mut cfg = SessionConfig::default_with(Scheme::adaptive());
//! cfg.duration = Dur::secs(15);
//! let result = run_session(trace, cfg);
//!
//! let summary = result.recorder.summarize_all();
//! assert!(summary.frames > 0);
//! println!(
//!     "mean latency {:.1} ms, mean SSIM {:.3}",
//!     summary.mean_latency_ms, summary.mean_ssim
//! );
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `ravel-sim` | time, event queue, seeded RNG, series |
//! | [`trace`] | `ravel-trace` | bandwidth traces and combinators |
//! | [`video`] | `ravel-video` | synthetic content sources |
//! | [`codec`] | `ravel-codec` | x264-behavioural encoder + decoder |
//! | [`net`] | `ravel-net` | packets, pacer, bottleneck link, feedback |
//! | [`cc`] | `ravel-cc` | GCC and baseline congestion controllers |
//! | [`core`] | `ravel-core` | **the contribution**: drop detector + adaptive controller |
//! | [`pipeline`] | `ravel-pipeline` | end-to-end session runner |
//! | [`metrics`] | `ravel-metrics` | stats, latency records, tables |
//! | [`harness`] | `ravel-harness` | parallel deterministic experiment harness |

#![warn(missing_docs)]

pub use ravel_cc as cc;
pub use ravel_codec as codec;
pub use ravel_core as core;
pub use ravel_harness as harness;
pub use ravel_metrics as metrics;
pub use ravel_net as net;
pub use ravel_pipeline as pipeline;
pub use ravel_sim as sim;
pub use ravel_trace as trace;
pub use ravel_video as video;
