//! Failure injection: the pipeline must survive hostile conditions
//! without panicking, hanging, or producing nonsense accounting.

use ravel::core::WatchdogConfig;
use ravel::net::{ChaosSchedule, FaultKind, FaultSegment, GilbertElliott, ReversePathConfig};
use ravel::pipeline::{run_session, run_session_chaos, Scheme, SessionConfig};
use ravel::sim::{Dur, Time};
use ravel::trace::{ConstantTrace, StepTrace};
use ravel::video::Resolution;

fn cfg(scheme: Scheme) -> SessionConfig {
    let mut cfg = SessionConfig::default_with(scheme);
    cfg.duration = Dur::secs(20);
    cfg
}

/// Shared sanity assertions for any completed session.
fn assert_sane(result: &ravel::pipeline::SessionResult) {
    assert!(result.frames_captured > 0);
    assert_eq!(
        result.recorder.records().len() as u64,
        result.frames_captured
    );
    for r in result.recorder.records() {
        assert!(
            (0.0..=1.0).contains(&r.ssim),
            "SSIM out of range: {}",
            r.ssim
        );
        if let Some(l) = r.latency {
            // Nothing can arrive faster than propagation + render.
            assert!(
                l >= Dur::millis(5),
                "impossible latency {l} for frame at {:?}",
                r.pts
            );
        }
    }
}

#[test]
fn near_blackout_and_recovery() {
    // Capacity collapses to 20 kbps for 3 s — not even one frame per
    // second fits — then recovers.
    let trace = || {
        StepTrace::new(vec![
            (Time::ZERO, 4e6),
            (Time::from_secs(8), 20e3),
            (Time::from_secs(11), 4e6),
        ])
    };
    for scheme in [Scheme::baseline(), Scheme::adaptive()] {
        let result = run_session(trace(), cfg(scheme));
        assert_sane(&result);
        // The blackout must be visible as freezes or huge latencies.
        let during = result
            .recorder
            .summarize(Time::from_secs(8), Time::from_secs(11));
        assert!(
            during.frozen > 0 || during.max_latency_ms > 500.0,
            "{}: blackout left no trace",
            scheme.name()
        );
        // And the tail must have recovered.
        let tail = result
            .recorder
            .summarize(Time::from_secs(17), Time::from_secs(20));
        assert!(
            tail.mean_ssim > 0.5,
            "{}: never recovered (ssim {})",
            scheme.name(),
            tail.mean_ssim
        );
    }
}

#[test]
fn total_blackout_does_not_hang() {
    // A fully dead link: the serializer's safety ceiling bounds every
    // packet, so the session must still terminate.
    let result = run_session(ConstantTrace::new(0.0), cfg(Scheme::adaptive()));
    assert_sane(&result);
    let s = result.recorder.summarize_all();
    assert!(
        s.freeze_ratio() > 0.9,
        "dead link somehow displayed frames: {}",
        s.freeze_ratio()
    );
}

#[test]
fn heavy_loss_with_rtx_survives() {
    let mut c = cfg(Scheme::adaptive());
    c.link.random_loss = 0.2;
    let result = run_session(ConstantTrace::new(4e6), c);
    assert_sane(&result);
    assert!(result.retransmissions > 0, "RTX never engaged at 20% loss");
    let s = result.recorder.summarize_all();
    assert!(s.mean_ssim > 0.4, "quality collapsed: {}", s.mean_ssim);
}

#[test]
fn heavy_loss_without_rtx_survives() {
    let mut c = cfg(Scheme::baseline());
    c.link.random_loss = 0.2;
    c.enable_rtx = false;
    let result = run_session(ConstantTrace::new(4e6), c);
    assert_sane(&result);
    assert_eq!(result.retransmissions, 0);
    // PLI + IDR is the only recovery; freezes will be plentiful but the
    // session must not collapse entirely.
    let s = result.recorder.summarize_all();
    assert!(s.displayed > 0);
}

#[test]
fn jittery_link_never_reorders_into_panic() {
    let mut c = cfg(Scheme::adaptive());
    c.link.jitter_std = Dur::millis(15);
    let result = run_session(StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10)), c);
    assert_sane(&result);
}

#[test]
fn tiny_bottleneck_queue() {
    let mut c = cfg(Scheme::baseline());
    c.link.queue_capacity_bytes = 10_000; // < 8 MTU packets
    let result = run_session(StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10)), c);
    assert_sane(&result);
    assert!(result.queue_drops > 0, "tiny queue never dropped");
}

#[test]
fn extreme_frame_rates() {
    for fps in [5u32, 60] {
        let mut c = cfg(Scheme::adaptive());
        c.fps = fps;
        let result = run_session(ConstantTrace::new(4e6), c);
        assert_sane(&result);
        let expected = 20 * fps as u64;
        assert!(
            (result.frames_captured as i64 - expected as i64).unsigned_abs() <= 1,
            "fps {fps}: captured {} expected ~{expected}",
            result.frames_captured
        );
    }
}

#[test]
fn low_resolution_capture() {
    let mut c = cfg(Scheme::adaptive());
    c.resolution = Resolution::P360;
    c.start_rate_bps = 1e6;
    let result = run_session(StepTrace::sudden_drop(1e6, 0.3e6, Time::from_secs(10)), c);
    assert_sane(&result);
}

#[test]
fn sender_grossly_overprovisioned_from_start() {
    // 8 Mbps start target on a 0.5 Mbps link: the session begins in
    // catastrophe; the adaptive controller must engage and stabilize.
    let mut c = cfg(Scheme::adaptive());
    c.start_rate_bps = 8e6;
    let result = run_session(ConstantTrace::new(0.5e6), c);
    assert_sane(&result);
    assert!(result.drops_handled >= 1);
    let tail = result
        .recorder
        .summarize(Time::from_secs(15), Time::from_secs(20));
    assert!(
        tail.mean_latency_ms < 500.0,
        "never stabilized: {:.0}ms",
        tail.mean_latency_ms
    );
}

#[test]
fn repeated_drops_in_quick_succession() {
    let trace = || {
        StepTrace::new(vec![
            (Time::ZERO, 4e6),
            (Time::from_secs(6), 2e6),
            (Time::from_secs(9), 1e6),
            (Time::from_secs(12), 0.5e6),
            (Time::from_secs(15), 2e6),
        ])
    };
    let result = run_session(trace(), cfg(Scheme::adaptive()));
    assert_sane(&result);
    // The controller may handle the staircase as several triggers or as
    // one long Drain episode whose capacity estimate keeps re-anchoring;
    // either way at least one trigger fires and the tail stabilizes at
    // the final (recovered 2 Mbps) capacity.
    assert!(result.drops_handled >= 1, "no drop detected at all");
    let tail = result
        .recorder
        .summarize(Time::from_secs(17), Time::from_secs(20));
    assert!(
        tail.mean_latency_ms < 300.0,
        "staircase never stabilized: {:.0}ms",
        tail.mean_latency_ms
    );
}

// --- Control-plane (reverse-path) fault injection ---------------------

/// The canonical E17 drop: 4→1 Mbps at 10 s, 20 s session.
fn drop_trace() -> StepTrace {
    StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10))
}

fn watchdog_for(cfg: &SessionConfig) -> WatchdogConfig {
    WatchdogConfig::for_timing(cfg.feedback_interval, cfg.reverse_delay * 2)
}

#[test]
fn feedback_blackout_no_panic_sane_accounting() {
    // 30% feedback loss plus a 1 s feedback blackout starting exactly at
    // the capacity drop: both schemes, watchdog on, must complete with
    // sane accounting.
    for scheme in [Scheme::baseline(), Scheme::adaptive()] {
        let mut c = cfg(scheme);
        c.reverse_path = ReversePathConfig::with_loss(0.3)
            .add_blackout(Time::from_secs(10), Time::from_secs(11));
        c.watchdog = Some(watchdog_for(&c));
        let result = run_session(drop_trace(), c);
        assert_sane(&result);
        assert!(
            result.reverse_lost > 0,
            "{}: impaired reverse path lost nothing",
            scheme.name()
        );
        assert!(
            result.watchdog_timeouts > 0,
            "{}: watchdog never fired through a 1 s blackout",
            scheme.name()
        );
    }
}

#[test]
fn duplicate_storm_discards_replayed_reports() {
    // Nearly every feedback report and NACK batch arrives twice. The
    // report_seq gate must discard the replays and the session must not
    // double-process its way into nonsense.
    let mut c = cfg(Scheme::adaptive());
    c.reverse_path = ReversePathConfig {
        duplicate_prob: 0.9,
        ..ReversePathConfig::default()
    };
    let result = run_session(drop_trace(), c);
    assert_sane(&result);
    assert!(result.reverse_duplicates > 0, "no duplicates injected");
    assert!(
        result.reports_discarded > 0,
        "duplicated reports were not discarded"
    );
    // A clean-forward-path session under pure control-plane duplication
    // must still deliver reasonable quality.
    let s = result.recorder.summarize_all();
    assert!(s.mean_ssim > 0.5, "quality collapsed: {}", s.mean_ssim);
}

#[test]
fn reordered_reports_are_discarded_not_processed() {
    // Reverse-path jitter well above the base delay reorders reports in
    // flight; stale ones (report_seq <= last seen) must be dropped
    // before they reach GCC or the drop detector.
    let mut c = cfg(Scheme::adaptive());
    c.reverse_path = ReversePathConfig {
        jitter_std: Dur::millis(30),
        ..ReversePathConfig::default()
    };
    let result = run_session(drop_trace(), c);
    assert_sane(&result);
    assert!(
        result.reports_discarded > 0,
        "30 ms reverse jitter produced no out-of-order reports"
    );
}

#[test]
fn send_rate_decays_toward_floor_while_blind() {
    // A 3 s total feedback blackout: the watchdog must walk the target
    // down exponentially toward its floor while the loop is blind.
    let mut c = cfg(Scheme::adaptive());
    c.record_series = true;
    c.reverse_path =
        ReversePathConfig::default().add_blackout(Time::from_secs(10), Time::from_secs(13));
    let wd = watchdog_for(&c);
    c.watchdog = Some(wd);
    let result = run_session(drop_trace(), c);
    assert_sane(&result);
    assert!(result.watchdog_timeouts >= 10, "too few blind steps");
    let target = result.series.get("target_bps").expect("series recorded");
    let early = target.mean_in(Time::from_secs(10), Time::from_millis(10_500));
    let late = target.mean_in(Time::from_millis(12_500), Time::from_secs(13));
    assert!(
        late < early,
        "target did not decay while blind: {early} -> {late}"
    );
    assert!(
        late >= wd.floor_bps,
        "target fell through the floor: {late}"
    );
    assert!(
        late <= wd.floor_bps * 2.0,
        "3 s of backoff never approached the floor: {late}"
    );
}

#[test]
fn impaired_reverse_path_is_deterministic() {
    // Identical seeds and fault schedule => byte-identical results, even
    // with every impairment mechanism engaged at once.
    let mk = || {
        let mut c = cfg(Scheme::adaptive());
        c.reverse_path = ReversePathConfig {
            loss: 0.1,
            gilbert_elliott: Some(GilbertElliott::bursty()),
            jitter_std: Dur::millis(5),
            duplicate_prob: 0.2,
            ..ReversePathConfig::default()
        }
        .add_blackout(Time::from_secs(10), Time::from_secs(11));
        c.watchdog = Some(watchdog_for(&c));
        c
    };
    let a = run_session(drop_trace(), mk());
    let b = run_session(drop_trace(), mk());
    assert_eq!(a.recorder.records(), b.recorder.records());
    assert_eq!(a.reverse_lost, b.reverse_lost);
    assert_eq!(a.reverse_duplicates, b.reverse_duplicates);
    assert_eq!(a.reports_discarded, b.reports_discarded);
    assert_eq!(a.watchdog_timeouts, b.watchdog_timeouts);
    assert_eq!(a.plis_sent, b.plis_sent);
    assert_eq!(a.retransmissions, b.retransmissions);
}

#[test]
fn watchdog_improves_p95_latency_under_blind_drop() {
    // The acceptance condition: 30% feedback loss + 1 s blackout over
    // the 4→1 Mbps drop. Cutting the rate while blind must strictly
    // reduce post-drop p95 latency versus flying blind at full rate.
    let mk = |watchdog: bool| {
        let mut c = cfg(Scheme::adaptive());
        c.reverse_path = ReversePathConfig::with_loss(0.3)
            .add_blackout(Time::from_secs(10), Time::from_secs(11));
        if watchdog {
            c.watchdog = Some(watchdog_for(&c));
        }
        run_session(drop_trace(), c)
    };
    let without = mk(false);
    let with = mk(true);
    assert_sane(&without);
    assert_sane(&with);
    let w_without = without
        .recorder
        .summarize(Time::from_secs(10), Time::from_secs(18));
    let w_with = with
        .recorder
        .summarize(Time::from_secs(10), Time::from_secs(18));
    assert!(
        w_with.p95_latency_ms < w_without.p95_latency_ms,
        "watchdog did not improve blind p95: {:.1} vs {:.1}",
        w_with.p95_latency_ms,
        w_without.p95_latency_ms
    );
}

#[test]
fn very_long_session_is_stable() {
    let mut c = cfg(Scheme::adaptive());
    c.duration = Dur::secs(180);
    let result = run_session(ConstantTrace::new(4e6), c);
    assert_sane(&result);
    let tail = result
        .recorder
        .summarize(Time::from_secs(170), Time::from_secs(180));
    assert!(tail.mean_latency_ms < 120.0);
    assert!(tail.mean_ssim > 0.9);
}

#[test]
fn forward_burst_loss_freeze_recovers_via_pli_keyframe() {
    // Forward-path Gilbert-Elliott burst loss severe enough to break
    // the reference chain (~95% bad-state occupancy, bad state lossless
    // for nobody: every packet in a burst dies). RTX abandons the gaps,
    // which must arm PLI; the PLI-forced keyframe must then repair the
    // decoder freeze once the impairment clears — the receiver-side
    // mirror of the reverse-path PLI tests above.
    let burst = FaultSegment {
        from: Time::from_secs(6),
        until: Time::from_secs(9),
        kind: FaultKind::BurstLoss(GilbertElliott {
            p_good_to_bad: 0.9,
            p_bad_to_good: 0.05,
            bad_loss: 1.0,
        }),
    };
    for scheme in [Scheme::baseline(), Scheme::adaptive()] {
        let schedule = ChaosSchedule::from_segments(vec![burst]);
        let result = run_session_chaos(ConstantTrace::new(4e6), cfg(scheme), Some(schedule));
        assert_sane(&result);
        assert!(
            result.chain_breaks >= 1,
            "{}: burst loss should break the reference chain",
            scheme.name()
        );
        assert!(
            result.plis_sent >= 1,
            "{}: a broken chain must trigger a PLI",
            scheme.name()
        );
        // The freeze-termination invariant is the machine-checked form
        // of "the PLI keyframe repaired the freeze within bound".
        assert!(
            result.violations.is_empty(),
            "{}: {:?}",
            scheme.name(),
            result.violations
        );
        // And the tail must actually be healthy again.
        let tail = result
            .recorder
            .summarize(Time::from_secs(15), Time::from_secs(20));
        assert_eq!(
            tail.frozen,
            0,
            "{}: still frozen after impairment cleared",
            scheme.name()
        );
        // Quality is back too (gcc ramps its rate more slowly than the
        // adaptive scheme after the loss window, so the bar is modest).
        assert!(
            tail.mean_ssim > 0.8,
            "{}: tail SSIM {}",
            scheme.name(),
            tail.mean_ssim
        );
    }
}
