//! Property-based tests over whole sessions: random capacity
//! trajectories and seeds must never violate the pipeline's invariants.

use proptest::prelude::*;
use ravel::pipeline::{run_session, Scheme, SessionConfig};
use ravel::sim::{Dur, Time};
use ravel::trace::StepTrace;

/// Builds an arbitrary piecewise-constant capacity trajectory within
/// RTC-plausible bounds.
fn arb_trace() -> impl Strategy<Value = StepTrace> {
    // 1-4 breakpoints after t=0, rates 0.3..6 Mbps, times 2..14 s.
    (
        0.3e6..6e6f64,
        proptest::collection::vec((2u64..14, 0.3e6..6e6f64), 1..4),
    )
        .prop_map(|(first, rest)| {
            let mut points = vec![(Time::ZERO, first)];
            let mut t = 0u64;
            for (dt, rate) in rest {
                t += dt;
                points.push((Time::from_secs(t), rate));
            }
            StepTrace::new(points)
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // whole-session runs are the expensive kind
        ..ProptestConfig::default()
    })]

    /// Whatever the capacity trajectory and seed, the session terminates
    /// with complete, ordered, in-range accounting for both schemes.
    #[test]
    fn session_invariants(trace in arb_trace(), seed in 0u64..1000) {
        for scheme in [Scheme::baseline(), Scheme::adaptive()] {
            let mut cfg = SessionConfig::default_with(scheme);
            cfg.duration = Dur::secs(16);
            cfg.seed = seed;
            let result = run_session(&trace, cfg);

            // One record per captured frame, in pts order.
            prop_assert_eq!(
                result.recorder.records().len() as u64,
                result.frames_captured
            );
            let mut last_pts = Time::ZERO;
            for r in result.recorder.records() {
                prop_assert!(r.pts >= last_pts);
                last_pts = r.pts;
                prop_assert!((0.0..=1.0).contains(&r.ssim));
                if let Some(l) = r.latency {
                    // Latency is at least encode+render and at most the
                    // session length plus drain grace.
                    prop_assert!(l >= Dur::millis(5));
                    prop_assert!(l <= Dur::secs(70), "latency {l}");
                }
            }
            // Skips never exceed captures; counters are consistent.
            prop_assert!(result.frames_skipped <= result.frames_captured);
            let s = result.recorder.summarize_all();
            prop_assert_eq!(s.frames, result.frames_captured);
        }
    }

    /// The adaptive scheme's post-drop latency is never dramatically
    /// worse than the baseline's on a clean single drop, regardless of
    /// severity and seed.
    #[test]
    fn adaptive_never_catastrophically_worse(
        after_mbps in 0.5f64..3.5,
        seed in 0u64..100,
    ) {
        let mk = || StepTrace::sudden_drop(4e6, after_mbps * 1e6, Time::from_secs(8));
        let mut bcfg = SessionConfig::default_with(Scheme::baseline());
        bcfg.duration = Dur::secs(16);
        bcfg.seed = seed;
        let mut acfg = SessionConfig::default_with(Scheme::adaptive());
        acfg.duration = Dur::secs(16);
        acfg.seed = seed;
        let b = run_session(mk(), bcfg);
        let a = run_session(mk(), acfg);
        let bw = b.recorder.summarize(Time::from_secs(8), Time::from_secs(15));
        let aw = a.recorder.summarize(Time::from_secs(8), Time::from_secs(15));
        // "Never catastrophically worse": within 1.5x + a 40 ms allowance
        // (severities near 1x have near-zero baseline spikes, where the
        // detector's reaction can add small jitter).
        prop_assert!(
            aw.mean_latency_ms <= bw.mean_latency_ms * 1.5 + 40.0,
            "adaptive {} vs baseline {} (drop to {} Mbps, seed {})",
            aw.mean_latency_ms, bw.mean_latency_ms, after_mbps, seed
        );
    }
}
