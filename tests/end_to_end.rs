//! Cross-crate integration tests: the full pipeline reproduces the
//! paper's headline behaviours.

use ravel::core::AdaptiveConfig;
use ravel::pipeline::{run_session, Scheme, SessionConfig};
use ravel::sim::{Dur, Time};
use ravel::trace::{BandwidthTrace, CellularProfile, ConstantTrace, StepTrace, StochasticTrace};
use ravel::video::ContentClass;

const DROP_AT: Time = Time::from_secs(10);

fn drop_cfg(scheme: Scheme) -> SessionConfig {
    let mut cfg = SessionConfig::default_with(scheme);
    cfg.duration = Dur::secs(30);
    cfg
}

fn run_drop(scheme: Scheme, after: f64) -> ravel::pipeline::SessionResult {
    run_session(
        StepTrace::sudden_drop(4e6, after, DROP_AT),
        drop_cfg(scheme),
    )
}

#[test]
fn headline_latency_reduction_is_in_papers_direction_and_scale() {
    // Paper: latency reduced by 28.66%..78.87% across conditions. We
    // require the 2.7x drop (one of the canonical conditions) to land in
    // a generous version of that band.
    let b = run_drop(Scheme::baseline(), 1.5e6);
    let a = run_drop(Scheme::adaptive(), 1.5e6);
    let bw = b.recorder.summarize(DROP_AT, DROP_AT + Dur::secs(8));
    let aw = a.recorder.summarize(DROP_AT, DROP_AT + Dur::secs(8));
    let reduction = 1.0 - aw.mean_latency_ms / bw.mean_latency_ms;
    assert!(
        (0.20..0.90).contains(&reduction),
        "latency reduction {:.1}% out of plausible band (baseline {:.0}ms, adaptive {:.0}ms)",
        reduction * 100.0,
        bw.mean_latency_ms,
        aw.mean_latency_ms
    );
}

#[test]
fn headline_quality_improvement_is_in_papers_band_for_moderate_drop() {
    // Paper: quality improved by 0.8%..3%. The moderate (2x) drop is the
    // condition where our measured delta falls inside the band.
    let b = run_drop(Scheme::baseline(), 2e6);
    let a = run_drop(Scheme::adaptive(), 2e6);
    let bs = b.recorder.summarize_all();
    let as_ = a.recorder.summarize_all();
    let delta = as_.mean_ssim / bs.mean_ssim - 1.0;
    assert!(
        (0.005..0.06).contains(&delta),
        "SSIM delta {:.2}% out of band (baseline {:.4}, adaptive {:.4})",
        delta * 100.0,
        bs.mean_ssim,
        as_.mean_ssim
    );
}

#[test]
fn adaptive_detects_exactly_one_drop_on_single_step() {
    let a = run_drop(Scheme::adaptive(), 1e6);
    assert!(
        (1..=3).contains(&a.drops_handled),
        "drops handled: {}",
        a.drops_handled
    );
}

#[test]
fn no_adaptation_on_a_stable_link() {
    let mut cfg = drop_cfg(Scheme::adaptive());
    cfg.duration = Dur::secs(30);
    let result = run_session(ConstantTrace::new(4.5e6), cfg);
    assert_eq!(result.drops_handled, 0, "false positive on stable link");
    assert_eq!(result.frames_skipped, 0);
    let s = result.recorder.summarize_all();
    assert!(
        s.mean_latency_ms < 120.0,
        "stable-link latency {}",
        s.mean_latency_ms
    );
}

#[test]
fn adaptive_never_worse_on_upward_step() {
    // Capacity *increases* mid-call: the adaptive controller must not
    // misfire and must track the baseline closely.
    let trace = || StepTrace::new(vec![(Time::ZERO, 2e6), (Time::from_secs(10), 4e6)]);
    // Start below the initial capacity — otherwise the session begins
    // overloaded and the controller correctly fires at t=0.
    let mut bcfg = drop_cfg(Scheme::baseline());
    bcfg.start_rate_bps = 1.5e6;
    let mut acfg = drop_cfg(Scheme::adaptive());
    acfg.start_rate_bps = 1.5e6;
    let b = run_session(trace(), bcfg);
    let a = run_session(trace(), acfg);
    let bs = b.recorder.summarize_all();
    let as_ = a.recorder.summarize_all();
    assert_eq!(a.drops_handled, 0, "misfired on a capacity increase");
    assert!(as_.mean_latency_ms < bs.mean_latency_ms * 1.2);
}

#[test]
fn deep_drop_with_recovery_round_trip() {
    let trace =
        || StepTrace::drop_and_recover(4e6, 0.5e6, Time::from_secs(10), Time::from_secs(18));
    let mut cfg = drop_cfg(Scheme::adaptive());
    cfg.duration = Dur::secs(35);
    let result = run_session(trace(), cfg);
    // Late-session latency must return to the pre-drop regime.
    let tail = result
        .recorder
        .summarize(Time::from_secs(28), Time::from_secs(34));
    assert!(
        tail.mean_latency_ms < 150.0,
        "did not recover after capacity came back: {:.0}ms",
        tail.mean_latency_ms
    );
}

#[test]
fn all_content_classes_benefit() {
    for content in ContentClass::ALL {
        let mut bcfg = drop_cfg(Scheme::baseline());
        bcfg.content = content;
        let mut acfg = drop_cfg(Scheme::adaptive());
        acfg.content = content;
        let b = run_session(StepTrace::sudden_drop(4e6, 1e6, DROP_AT), bcfg);
        let a = run_session(StepTrace::sudden_drop(4e6, 1e6, DROP_AT), acfg);
        let bw = b.recorder.summarize(DROP_AT, DROP_AT + Dur::secs(8));
        let aw = a.recorder.summarize(DROP_AT, DROP_AT + Dur::secs(8));
        assert!(
            aw.mean_latency_ms < bw.mean_latency_ms,
            "{content}: adaptive {:.0}ms vs baseline {:.0}ms",
            aw.mean_latency_ms,
            bw.mean_latency_ms
        );
    }
}

#[test]
fn ablation_ordering_holds() {
    // Each added mechanism must not increase post-drop mean latency
    // dramatically, and the full config must beat fast-qp alone.
    let run_with = |cfg: Option<AdaptiveConfig>| {
        let scheme = match cfg {
            None => Scheme::baseline(),
            Some(c) => Scheme::adaptive_with(c),
        };
        let r = run_drop(scheme, 1e6);
        r.recorder
            .summarize(DROP_AT, DROP_AT + Dur::secs(8))
            .mean_latency_ms
    };
    let baseline = run_with(None);
    let fast_qp = run_with(Some(AdaptiveConfig::fast_qp_only()));
    let full = run_with(Some(AdaptiveConfig::default()));
    assert!(
        fast_qp < baseline,
        "fast-qp did not help: {fast_qp} vs {baseline}"
    );
    assert!(
        full < fast_qp,
        "full config did not beat fast-qp: {full} vs {fast_qp}"
    );
}

#[test]
fn stochastic_traces_aggregate_win() {
    let profile = CellularProfile::lte_like();
    let mut base_sum = 0.0;
    let mut adpt_sum = 0.0;
    let n = 5;
    for seed in 0..n {
        let mk = || StochasticTrace::generate(&profile, Dur::secs(30), seed);
        let mut bcfg = drop_cfg(Scheme::baseline());
        bcfg.seed = seed;
        let mut acfg = drop_cfg(Scheme::adaptive());
        acfg.seed = seed;
        base_sum += run_session(mk(), bcfg)
            .recorder
            .summarize_all()
            .mean_latency_ms;
        adpt_sum += run_session(mk(), acfg)
            .recorder
            .summarize_all()
            .mean_latency_ms;
    }
    assert!(
        adpt_sum < base_sum,
        "no aggregate win over {n} stochastic traces: {adpt_sum} vs {base_sum}"
    );
}

#[test]
fn byte_conservation_packets_vs_frames() {
    // Everything the link delivered must trace back to encoded frames:
    // captured = skipped + encoded; recorder covers all captured frames.
    let result = run_drop(Scheme::adaptive(), 1e6);
    assert_eq!(
        result.recorder.records().len() as u64,
        result.frames_captured
    );
    let displayed = result
        .recorder
        .records()
        .iter()
        .filter(|r| r.latency.is_some())
        .count() as u64;
    assert!(displayed <= result.frames_captured - result.frames_skipped);
}

#[test]
fn seeds_change_results_but_not_conclusions() {
    let mut means = Vec::new();
    for seed in [1u64, 2, 3] {
        let mut cfg = drop_cfg(Scheme::adaptive());
        cfg.seed = seed;
        let r = run_session(StepTrace::sudden_drop(4e6, 1e6, DROP_AT), cfg);
        means.push(r.recorder.summarize_all().mean_latency_ms);
    }
    // Different seeds -> different numbers...
    assert!(means[0] != means[1] || means[1] != means[2]);
    // ...but all in the same regime.
    for m in means {
        assert!(m < 400.0, "seed blew up: {m}");
    }
}

#[test]
fn trace_combinators_compose_with_sessions() {
    // A scaled + clamped stochastic trace is still a valid substrate.
    let profile = CellularProfile::wifi_like();
    let trace = StochasticTrace::generate(&profile, Dur::secs(30), 3)
        .scaled(0.5)
        .clamped(0.3e6, 6e6);
    let result = run_session(trace, drop_cfg(Scheme::adaptive()));
    assert!(result.frames_captured > 0);
    let s = result.recorder.summarize_all();
    assert!(s.mean_ssim > 0.5);
}
