//! The everything-on session: all optional subsystems enabled at once.
//!
//! Audio + RTX + FEC + temporal layers + resolution ladder + jitter +
//! random loss + a stochastic trace with drops — if feature interactions
//! break invariants, this is where it shows.

use ravel::core::AdaptiveConfig;
use ravel::pipeline::{run_session, Scheme, SessionConfig, SessionResult};
use ravel::sim::{Dur, Time};
use ravel::trace::{BandwidthTrace, CellularProfile, StepTrace, StochasticTrace};

fn kitchen_sink_cfg(scheme: Scheme) -> SessionConfig {
    let mut cfg = SessionConfig::default_with(scheme);
    cfg.duration = Dur::secs(30);
    cfg.enable_audio = true;
    cfg.enable_rtx = true;
    cfg.enable_fec = true;
    cfg.fec_group_size = 8;
    cfg.temporal_layers = 2;
    cfg.link.random_loss = 0.02;
    cfg.link.jitter_std = Dur::millis(3);
    cfg
}

fn assert_invariants(result: &SessionResult) {
    assert_eq!(
        result.recorder.records().len() as u64,
        result.frames_captured
    );
    for r in result.recorder.records() {
        assert!((0.0..=1.0).contains(&r.ssim));
    }
    for &(_, l) in &result.audio_latencies {
        assert!(l >= Dur::millis(20));
    }
    assert!(result.frames_skipped <= result.frames_captured);
}

#[test]
fn all_features_on_stochastic_trace() {
    for scheme in [Scheme::baseline(), Scheme::adaptive()] {
        let trace = StochasticTrace::generate(&CellularProfile::lte_like(), Dur::secs(30), 11);
        let result = run_session(trace, kitchen_sink_cfg(scheme));
        assert_invariants(&result);
        // All subsystems actually engaged.
        assert!(result.retransmissions > 0, "{}: RTX idle", scheme.name());
        assert!(result.fec_parity_sent > 0, "{}: FEC idle", scheme.name());
        assert!(
            result.audio_latencies.len() > 1000,
            "{}: audio missing",
            scheme.name()
        );
        let s = result.recorder.summarize_all();
        // Threshold recalibrated (0.6 → 0.55) after fixing the
        // FeedbackBuilder double-reporting bug: late RTX repairs used to
        // be reported twice, inflating GCC's delivered-rate estimate and
        // with it the baseline's sending rate/quality on lossy traces.
        // See EXPERIMENTS.md "Reproduction notes".
        assert!(
            s.mean_ssim > 0.55,
            "{}: quality collapsed under combined features: {}",
            scheme.name(),
            s.mean_ssim
        );
    }
}

#[test]
fn all_features_on_clean_drop_adaptive_still_wins() {
    let mk = || StepTrace::sudden_drop(4e6, 1e6, Time::from_secs(10));
    let b = run_session(mk(), kitchen_sink_cfg(Scheme::baseline()));
    let a = run_session(mk(), kitchen_sink_cfg(Scheme::adaptive()));
    assert_invariants(&b);
    assert_invariants(&a);
    let bw = b
        .recorder
        .summarize(Time::from_secs(10), Time::from_secs(18));
    let aw = a
        .recorder
        .summarize(Time::from_secs(10), Time::from_secs(18));
    assert!(
        aw.mean_latency_ms < bw.mean_latency_ms,
        "adaptive lost with all features on: {} vs {}",
        aw.mean_latency_ms,
        bw.mean_latency_ms
    );
}

#[test]
fn all_features_deterministic() {
    let mk = || {
        StochasticTrace::generate(&CellularProfile::wifi_like(), Dur::secs(20), 5)
            .clamped(0.3e6, 8e6)
    };
    let mut cfg = kitchen_sink_cfg(Scheme::adaptive());
    cfg.duration = Dur::secs(20);
    let a = run_session(mk(), cfg);
    let b = run_session(mk(), cfg);
    assert_eq!(a.recorder.records(), b.recorder.records());
    assert_eq!(a.retransmissions, b.retransmissions);
    assert_eq!(a.fec_recovered, b.fec_recovered);
    assert_eq!(a.audio_latencies, b.audio_latencies);
}

#[test]
fn continuous_mode_with_all_features() {
    let trace = StochasticTrace::generate(&CellularProfile::lte_like(), Dur::secs(30), 3);
    let result = run_session(
        trace,
        kitchen_sink_cfg(Scheme::adaptive_with(AdaptiveConfig::continuous())),
    );
    assert_invariants(&result);
    let s = result.recorder.summarize_all();
    assert!(s.mean_latency_ms < 400.0, "latency {}", s.mean_latency_ms);
}
