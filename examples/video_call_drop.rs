//! A video call riding through a cellular-style bandwidth drop, with a
//! time-series dump suitable for plotting (the poster's motivating
//! "latency spike" picture).
//!
//! Prints CSV: one block per scheme with capacity, encoder target, send
//! rate, bottleneck queue delay and per-frame latency around the drop.
//!
//! ```text
//! cargo run --release --example video_call_drop > drop_series.csv
//! ```

use ravel::pipeline::{run_session, Scheme, SessionConfig};
use ravel::sim::{Dur, Time};
use ravel::trace::StepTrace;
use ravel::video::ContentClass;

fn main() {
    let drop_at = Time::from_secs(10);

    for scheme in [Scheme::baseline(), Scheme::adaptive()] {
        let mut cfg = SessionConfig::default_with(scheme);
        cfg.content = ContentClass::TalkingHead;
        cfg.duration = Dur::secs(25);
        cfg.record_series = true;
        let result = run_session(StepTrace::sudden_drop(4e6, 1e6, drop_at), cfg);

        println!("# scheme={}", scheme.name());
        println!("time_s,capacity_mbps,target_mbps,send_mbps,queue_ms,latency_ms");
        // Sample every 100 ms from 8 s to 18 s.
        let series = &result.series;
        let get = |name: &str| series.get(name).expect("series recorded");
        let (cap, tgt, snd, q, lat) = (
            get("capacity_bps"),
            get("target_bps"),
            get("send_rate_bps"),
            get("link_queue_ms"),
            get("frame_latency_ms"),
        );
        for step in 0..100u64 {
            let t = Time::from_millis(8_000 + step * 100);
            let w = Time::from_millis(8_000 + (step + 1) * 100);
            println!(
                "{:.1},{:.3},{:.3},{:.3},{:.1},{:.1}",
                t.as_secs_f64(),
                cap.mean_in(t, w) / 1e6,
                tgt.mean_in(t, w) / 1e6,
                snd.mean_in(t, w) / 1e6,
                q.mean_in(t, w),
                lat.mean_in(t, w),
            );
        }
        let s = result.recorder.summarize(drop_at, drop_at + Dur::secs(8));
        println!(
            "# post-drop: mean={:.1}ms p95={:.1}ms ssim={:.4} freezes={}",
            s.mean_latency_ms, s.p95_latency_ms, s.mean_ssim, s.frozen
        );
        println!();
    }
}
