//! A scripted meeting colliding with a bandwidth drop.
//!
//! Timeline: talking heads, then screen share starting two seconds
//! *after* the network drops 4→1 Mbps — so the slide flip (scene cut →
//! I-frame burst) lands while the link is congested: the encoder's
//! worst moment. Uses the low-level pipeline pieces directly to drive a
//! [`ScriptedSource`], showing how the library composes outside
//! `run_session`.
//!
//! ```text
//! cargo run --release --example meeting_scenario
//! ```

use ravel::codec::{Encoder, EncoderConfig};
use ravel::core::{AdaptiveConfig, AdaptiveController, FrameDecision};
use ravel::metrics::Table;
use ravel::sim::{Dur, Time};
use ravel::video::ScriptedSource;

fn main() {
    // Encode the scripted meeting with both reconfiguration styles and
    // compare the encoder's own output against a 1 Mbps post-drop budget.
    // (For full end-to-end numbers, see `screen_share_drop`.)
    let drop_at = Time::from_secs(10);
    let mut table = Table::new(&[
        "style",
        "excess@drop(10fr)",
        "excess@flip(10fr)",
        "mean_qp_post",
        "skips",
    ]);

    for (name, fast) in [("slow-reconfig", false), ("fast-reconfig", true)] {
        let mut source = ScriptedSource::meeting(Time::from_secs(12), Time::from_secs(25), 30, 7);
        let mut encoder = Encoder::new(EncoderConfig::rtc(4e6, 30));
        let mut controller = AdaptiveController::new(AdaptiveConfig::default(), 30);
        let mut skips = 0u64;
        let mut post_qp = Vec::new();
        let mut excess_drop: i64 = 0; // first 10 frames after the drop
        let mut excess_flip: i64 = 0; // first 10 frames after the flip
        let mut reconfigured = false;
        let flip_at = Time::from_secs(12);

        for i in 0..900u64 {
            let frame = source.next_frame();
            let now = frame.pts;
            // The 30 fps grid does not land exactly on 10 s.
            if now >= drop_at && !reconfigured {
                reconfigured = true;
                // The app learns of the drop (feedback handled elsewhere;
                // here we drive the encoder paths directly).
                if fast {
                    encoder.fast_reconfigure(0.85e6);
                    encoder.override_frame_budget(Some(28_000));
                } else {
                    encoder.set_target_bitrate(0.85e6);
                }
            }
            // The adaptive controller's frame hook still manages the
            // resolution ladder in the fast case.
            let decision = if fast {
                controller.on_frame(&frame, now, &mut encoder)
            } else {
                FrameDecision::Encode
            };
            if decision == FrameDecision::Skip {
                skips += 1;
                continue;
            }
            let encoded = encoder.encode(&frame, now);
            // Excess over the post-drop 1 Mbps per-frame budget in the
            // two critical windows: right after the drop, and right
            // after the slide flip (whose I-frame is the hard part).
            let over = encoded.size_bits() as i64 - 33_333;
            if now >= drop_at && now < drop_at + Dur::millis(333) {
                excess_drop += over;
            }
            if now >= flip_at && now < flip_at + Dur::millis(333) {
                excess_flip += over;
            }
            if now >= drop_at {
                post_qp.push(encoded.qp.value());
            }
            let _ = i;
        }

        let mean_qp = post_qp.iter().sum::<f64>() / post_qp.len() as f64;
        table.row_owned(vec![
            name.to_string(),
            format!("{excess_drop}"),
            format!("{excess_flip}"),
            format!("{mean_qp:.1}"),
            skips.to_string(),
        ]);
    }

    println!("Scripted meeting (slides from 12s), drop 4->1 Mbps at 10s:");
    println!("{}", table.render());
    println!(
        "Positive excess bits become queueing delay. The slow path overshoots\n\
         in the first frames after the drop and again at the slide-flip\n\
         I-frame; the fast path's R-D-solved budgets stay on target (its\n\
         post-drop QP is also lower = better quality for the same network)."
    );
}
