//! Loss recovery on a wireless-flavoured path: NACK/RTX vs FEC vs both.
//!
//! Runs the adaptive scheme through the canonical drop with random
//! packet loss and each recovery strategy, printing the quality/latency
//! trade-off plus a latency CDF for the best strategy.
//!
//! ```text
//! cargo run --release --example lossy_network [loss_percent]
//! ```

use ravel::metrics::{Cdf, Table};
use ravel::pipeline::{run_session, Scheme, SessionConfig};
use ravel::sim::{Dur, Time};
use ravel::trace::StepTrace;

fn main() {
    let loss: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .map(|p: f64| p / 100.0)
        .unwrap_or(0.03);

    let drop_at = Time::from_secs(10);
    let mut table = Table::new(&[
        "recovery",
        "mean_ms",
        "p95_ms",
        "sess_ssim",
        "freeze_%",
        "rtx",
        "fec_recovered",
    ]);

    let mut best_cdf: Option<(String, Cdf)> = None;
    for (name, rtx, fec) in [
        ("none", false, false),
        ("rtx", true, false),
        ("fec", false, true),
        ("rtx+fec", true, true),
    ] {
        let mut cfg = SessionConfig::default_with(Scheme::adaptive());
        cfg.duration = Dur::secs(30);
        cfg.link.random_loss = loss;
        cfg.enable_rtx = rtx;
        cfg.enable_fec = fec;
        let result = run_session(StepTrace::sudden_drop(4e6, 1e6, drop_at), cfg);
        let s = result.recorder.summarize_all();
        table.row_owned(vec![
            name.to_string(),
            format!("{:.1}", s.mean_latency_ms),
            format!("{:.1}", s.p95_latency_ms),
            format!("{:.4}", s.mean_ssim),
            format!("{:.1}%", s.freeze_ratio() * 100.0),
            result.retransmissions.to_string(),
            result.fec_recovered.to_string(),
        ]);
        if name == "rtx" {
            let cdf = Cdf::from_samples(
                result
                    .recorder
                    .records()
                    .iter()
                    .filter_map(|r| r.latency)
                    .map(|l| l.as_millis_f64()),
            );
            best_cdf = Some((name.to_string(), cdf));
        }
    }

    println!(
        "Loss recovery at {:.0}% random loss (adaptive scheme, 4->1 Mbps drop):",
        loss * 100.0
    );
    println!("{}", table.render());

    if let Some((name, mut cdf)) = best_cdf {
        println!("Latency CDF ({name}), 20 points:");
        print!("{}", cdf.to_csv("latency_ms", 20));
    }
}
