//! Mechanism ablation: which parts of the adaptive controller buy what.
//!
//! Runs the canonical drop with each E7 configuration — fast-QP only,
//! +VBV rescale, +frame skip, full (adds the resolution ladder) — plus
//! the baseline, and prints post-drop latency and quality per level.
//!
//! ```text
//! cargo run --release --example ablation
//! ```

use ravel::core::AdaptiveConfig;
use ravel::metrics::Table;
use ravel::pipeline::{run_session, Scheme, SessionConfig};
use ravel::sim::{Dur, Time};
use ravel::trace::StepTrace;

fn main() {
    let drop_at = Time::from_secs(10);
    let mk_trace = || StepTrace::sudden_drop(4e6, 0.5e6, drop_at);

    let levels: [(&str, Option<AdaptiveConfig>); 5] = [
        ("baseline", None),
        ("fast-qp", Some(AdaptiveConfig::fast_qp_only())),
        ("+vbv", Some(AdaptiveConfig::fast_qp_and_vbv())),
        ("+skip", Some(AdaptiveConfig::without_ladder())),
        ("full", Some(AdaptiveConfig::default())),
    ];

    let mut table = Table::new(&[
        "mechanisms",
        "mean_ms",
        "p95_ms",
        "mean_ssim",
        "freezes",
        "skips",
    ]);

    for (name, adaptive) in levels {
        let scheme = match adaptive {
            None => Scheme::baseline(),
            Some(cfg) => Scheme::adaptive_with(cfg),
        };
        let mut cfg = SessionConfig::default_with(scheme);
        cfg.duration = Dur::secs(30);
        let result = run_session(mk_trace(), cfg);
        let s = result.recorder.summarize(drop_at, drop_at + Dur::secs(8));
        table.row_owned(vec![
            name.to_string(),
            format!("{:.1}", s.mean_latency_ms),
            format!("{:.1}", s.p95_latency_ms),
            format!("{:.4}", s.mean_ssim),
            s.frozen.to_string(),
            result.frames_skipped.to_string(),
        ]);
    }

    println!("Ablation on a deep drop (4 Mbps -> 0.5 Mbps), post-drop window:");
    println!("{}", table.render());
}
