//! Mechanism ablation: which parts of the adaptive controller buy what.
//!
//! Runs the canonical drop with each E7 configuration — fast-QP only,
//! +VBV rescale, +frame skip, full (adds the resolution ladder) — plus
//! the baseline, and prints post-drop latency and quality per level.
//! All five sessions run concurrently on the harness pool.
//!
//! ```text
//! cargo run --release --example ablation [jobs]
//! ```

use ravel::core::AdaptiveConfig;
use ravel::harness::{default_jobs, run_cells, Cell, TraceSpec};
use ravel::metrics::Table;
use ravel::pipeline::{Scheme, SessionConfig};
use ravel::sim::{Dur, Time};

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(default_jobs);
    let drop_at = Time::from_secs(10);

    let levels: [(&str, Option<AdaptiveConfig>); 5] = [
        ("baseline", None),
        ("fast-qp", Some(AdaptiveConfig::fast_qp_only())),
        ("+vbv", Some(AdaptiveConfig::fast_qp_and_vbv())),
        ("+skip", Some(AdaptiveConfig::without_ladder())),
        ("full", Some(AdaptiveConfig::default())),
    ];

    let cells: Vec<Cell> = levels
        .iter()
        .map(|(name, adaptive)| {
            let scheme = match adaptive {
                None => Scheme::baseline(),
                Some(cfg) => Scheme::adaptive_with(*cfg),
            };
            let mut cfg = SessionConfig::default_with(scheme);
            cfg.duration = Dur::secs(30);
            Cell {
                label: name.to_string(),
                trace: TraceSpec::SuddenDrop {
                    pre_bps: 4e6,
                    after_bps: 0.5e6,
                    at: drop_at,
                },
                cfg,
                contracts: None,
            }
        })
        .collect();
    let runs = run_cells(&cells, jobs);

    let mut table = Table::new(&[
        "mechanisms",
        "mean_ms",
        "p95_ms",
        "mean_ssim",
        "freezes",
        "skips",
    ]);
    for run in &runs {
        let s = run
            .result
            .recorder
            .summarize(drop_at, drop_at + Dur::secs(8));
        table.row_owned(vec![
            run.label.clone(),
            format!("{:.1}", s.mean_latency_ms),
            format!("{:.1}", s.p95_latency_ms),
            format!("{:.4}", s.mean_ssim),
            s.frozen.to_string(),
            run.result.frames_skipped.to_string(),
        ]);
    }

    println!("Ablation on a deep drop (4 Mbps -> 0.5 Mbps), post-drop window:");
    println!("{}", table.render());
}
