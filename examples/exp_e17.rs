//! E17 acceptance harness: control-plane robustness under feedback
//! impairment.
//!
//! Runs the headline E17 condition — a 4→1 Mbps capacity drop at t=10 s
//! with the *reverse* path simultaneously impaired (30% i.i.d. feedback
//! loss plus a 1 s feedback blackout starting at the drop) — for the
//! adaptive scheme with and without the feedback watchdog, plus the
//! unimpaired control run. Prints post-drop latency, the blind-period
//! send-rate decay, and reverse-path accounting, then re-runs the
//! watchdog session with the same seed to demonstrate byte-identical
//! determinism under fault injection.
//!
//! ```text
//! cargo run --release --example exp_e17
//! ```

use ravel::core::WatchdogConfig;
use ravel::metrics::Table;
use ravel::net::ReversePathConfig;
use ravel::pipeline::{run_session, Scheme, SessionConfig, SessionResult};
use ravel::sim::{Dur, Time};
use ravel::trace::StepTrace;

const DROP_AT: Time = Time::from_secs(10);

fn run(impaired: bool, watchdog: bool) -> SessionResult {
    let mut cfg = SessionConfig::default_with(Scheme::adaptive());
    cfg.duration = Dur::secs(30);
    cfg.record_series = true;
    if impaired {
        cfg.reverse_path =
            ReversePathConfig::with_loss(0.3).add_blackout(DROP_AT, DROP_AT + Dur::secs(1));
    }
    if watchdog {
        cfg.watchdog = Some(WatchdogConfig::for_timing(
            cfg.feedback_interval,
            cfg.reverse_delay * 2,
        ));
    }
    run_session(StepTrace::sudden_drop(4e6, 1e6, DROP_AT), cfg)
}

fn main() {
    println!("\n=== E17: 4->1 Mbps drop + 30% feedback loss + 1 s blackout ===\n");

    let mut t = Table::new(&[
        "run",
        "p50_ms",
        "p95_ms",
        "sess_ssim",
        "wd_steps",
        "discarded",
        "rev_lost",
        "plis",
    ]);
    let mut p95 = Vec::new();
    for (name, impaired, wd) in [
        ("clean reverse path", false, false),
        ("impaired, no watchdog", true, false),
        ("impaired + watchdog", true, true),
    ] {
        let r = run(impaired, wd);
        let w = r.recorder.summarize(DROP_AT, DROP_AT + Dur::secs(8));
        p95.push((name, w.p95_latency_ms));
        t.row_owned(vec![
            name.to_string(),
            format!("{:.1}", w.p50_latency_ms),
            format!("{:.1}", w.p95_latency_ms),
            format!("{:.4}", r.recorder.summarize_all().mean_ssim),
            r.watchdog_timeouts.to_string(),
            r.reports_discarded.to_string(),
            r.reverse_lost.to_string(),
            r.plis_sent.to_string(),
        ]);
    }
    println!("{}", t.render());

    // Blind-period decay: the commanded target in successive 250 ms
    // windows through the blackout, watchdog on.
    let r = run(true, true);
    let target = r.series.get("target_bps").expect("series recorded");
    println!("target_bps through the 1 s blackout (watchdog on):");
    for i in 0..6u64 {
        let from = DROP_AT + Dur::millis(250 * i);
        let to = DROP_AT + Dur::millis(250 * (i + 1));
        println!(
            "  t+{:>4} ms  {:>7.0} kbps",
            250 * (i + 1),
            target.mean_in(from, to) / 1e3
        );
    }

    // Determinism: identical seed + fault schedule => byte-identical run.
    let r2 = run(true, true);
    assert_eq!(r.recorder.records(), r2.recorder.records());
    assert_eq!(r.watchdog_timeouts, r2.watchdog_timeouts);
    assert_eq!(r.reports_discarded, r2.reports_discarded);
    assert_eq!(r.reverse_lost, r2.reverse_lost);
    println!("\ndeterminism: replayed run is byte-identical ✓");

    let no_wd = p95
        .iter()
        .find(|(n, _)| *n == "impaired, no watchdog")
        .unwrap()
        .1;
    let with_wd = p95
        .iter()
        .find(|(n, _)| *n == "impaired + watchdog")
        .unwrap()
        .1;
    println!("p95 during blind window: {no_wd:.1} ms (no watchdog) -> {with_wd:.1} ms (watchdog)");
}
