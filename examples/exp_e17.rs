//! E17 acceptance harness: control-plane robustness under feedback
//! impairment.
//!
//! Runs the headline E17 condition — a 4→1 Mbps capacity drop at t=10 s
//! with the *reverse* path simultaneously impaired (30% i.i.d. feedback
//! loss plus a 1 s feedback blackout starting at the drop) — for the
//! adaptive scheme with and without the feedback watchdog, plus the
//! unimpaired control run, all three concurrently on the harness pool.
//! Prints post-drop latency, the blind-period send-rate decay, and
//! reverse-path accounting, then re-runs the watchdog session with the
//! same seed to demonstrate byte-identical determinism under fault
//! injection.
//!
//! ```text
//! cargo run --release --example exp_e17 [jobs]
//! ```

use ravel::core::WatchdogConfig;
use ravel::harness::{default_jobs, run_cells, Cell, TraceSpec};
use ravel::metrics::Table;
use ravel::net::ReversePathConfig;
use ravel::pipeline::{Scheme, SessionConfig};
use ravel::sim::{Dur, Time};

const DROP_AT: Time = Time::from_secs(10);

fn cell(name: &str, impaired: bool, watchdog: bool) -> Cell {
    let mut cfg = SessionConfig::default_with(Scheme::adaptive());
    cfg.duration = Dur::secs(30);
    cfg.record_series = true;
    if impaired {
        cfg.reverse_path =
            ReversePathConfig::with_loss(0.3).add_blackout(DROP_AT, DROP_AT + Dur::secs(1));
    }
    if watchdog {
        cfg.watchdog = Some(WatchdogConfig::for_timing(
            cfg.feedback_interval,
            cfg.reverse_delay * 2,
        ));
    }
    Cell {
        label: name.to_string(),
        trace: TraceSpec::SuddenDrop {
            pre_bps: 4e6,
            after_bps: 1e6,
            at: DROP_AT,
        },
        cfg,
        contracts: None,
    }
}

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(default_jobs);

    println!("\n=== E17: 4->1 Mbps drop + 30% feedback loss + 1 s blackout ===\n");

    let cells = vec![
        cell("clean reverse path", false, false),
        cell("impaired, no watchdog", true, false),
        cell("impaired + watchdog", true, true),
    ];
    let runs = run_cells(&cells, jobs);

    let mut t = Table::new(&[
        "run",
        "p50_ms",
        "p95_ms",
        "sess_ssim",
        "wd_steps",
        "discarded",
        "rev_lost",
        "plis",
    ]);
    let mut p95 = Vec::new();
    for run in &runs {
        let r = &run.result;
        let w = r.recorder.summarize(DROP_AT, DROP_AT + Dur::secs(8));
        p95.push((run.label.clone(), w.p95_latency_ms));
        t.row_owned(vec![
            run.label.clone(),
            format!("{:.1}", w.p50_latency_ms),
            format!("{:.1}", w.p95_latency_ms),
            format!("{:.4}", r.recorder.summarize_all().mean_ssim),
            r.watchdog_timeouts.to_string(),
            r.reports_discarded.to_string(),
            r.reverse_lost.to_string(),
            r.plis_sent.to_string(),
        ]);
    }
    println!("{}", t.render());

    // Blind-period decay: the commanded target in successive 250 ms
    // windows through the blackout, watchdog on (the pool's third cell).
    let r = &runs[2].result;
    let target = r.series.get("target_bps").expect("series recorded");
    println!("target_bps through the 1 s blackout (watchdog on):");
    for i in 0..6u64 {
        let from = DROP_AT + Dur::millis(250 * i);
        let to = DROP_AT + Dur::millis(250 * (i + 1));
        println!(
            "  t+{:>4} ms  {:>7.0} kbps",
            250 * (i + 1),
            target.mean_in(from, to) / 1e3
        );
    }

    // Determinism: identical seed + fault schedule => byte-identical
    // run, even though the first copy ran on a pool worker.
    let r2 = cells[2].run();
    assert_eq!(r.recorder.records(), r2.recorder.records());
    assert_eq!(r.watchdog_timeouts, r2.watchdog_timeouts);
    assert_eq!(r.reports_discarded, r2.reports_discarded);
    assert_eq!(r.reverse_lost, r2.reverse_lost);
    println!("\ndeterminism: replayed run is byte-identical ✓");

    let no_wd = p95
        .iter()
        .find(|(n, _)| n == "impaired, no watchdog")
        .unwrap()
        .1;
    let with_wd = p95
        .iter()
        .find(|(n, _)| n == "impaired + watchdog")
        .unwrap()
        .1;
    println!("p95 during blind window: {no_wd:.1} ms (no watchdog) -> {with_wd:.1} ms (watchdog)");
}
