//! Robustness sweep over stochastic LTE-like capacity traces.
//!
//! Runs both schemes over a set of seeded Markov-modulated cellular
//! traces (each with organic fades and recoveries) and prints per-seed
//! and aggregate latency/quality, demonstrating the controller outside
//! the clean single-step scenario. The grid runs on the parallel
//! harness pool — results come back in cell order, so the table is
//! identical at any worker count.
//!
//! ```text
//! cargo run --release --example trace_sweep [num_seeds] [jobs]
//! ```

use ravel::harness::{default_jobs, run_cells, Cell, TraceSpec};
use ravel::metrics::{RunningStats, Table};
use ravel::pipeline::{Scheme, SessionConfig};
use ravel::sim::Dur;

fn main() {
    let mut args = std::env::args().skip(1);
    let seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let jobs: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(default_jobs);
    let duration = Dur::secs(45);

    // One cell per (seed, scheme), expanded in the order the table
    // consumes them: baseline then adaptive within each seed.
    let mut cells = Vec::new();
    for seed in 0..seeds {
        for scheme in [Scheme::baseline(), Scheme::adaptive()] {
            let mut cfg = SessionConfig::default_with(scheme);
            cfg.duration = duration;
            cfg.seed = seed;
            cells.push(Cell {
                label: format!("seed{}/{}", seed, scheme.name()),
                trace: TraceSpec::LteLike {
                    seed,
                    len: duration,
                },
                cfg,
                contracts: None,
            });
        }
    }
    let runs = run_cells(&cells, jobs);

    let mut table = Table::new(&[
        "seed",
        "base_mean_ms",
        "base_p95_ms",
        "adpt_mean_ms",
        "adpt_p95_ms",
        "adpt_drops_handled",
    ]);
    let mut base_means = RunningStats::new();
    let mut adpt_means = RunningStats::new();

    for (seed, pair) in runs.chunks(2).enumerate() {
        let bs = pair[0].result.recorder.summarize_all();
        let as_ = pair[1].result.recorder.summarize_all();
        base_means.push(bs.mean_latency_ms);
        adpt_means.push(as_.mean_latency_ms);
        table.row_owned(vec![
            seed.to_string(),
            format!("{:.1}", bs.mean_latency_ms),
            format!("{:.1}", bs.p95_latency_ms),
            format!("{:.1}", as_.mean_latency_ms),
            format!("{:.1}", as_.p95_latency_ms),
            pair[1].result.drops_handled.to_string(),
        ]);
    }

    println!(
        "LTE-like stochastic traces, {}s sessions ({} jobs):",
        duration.as_micros() / 1_000_000,
        jobs
    );
    println!("{}", table.render());
    println!(
        "aggregate mean latency: baseline {:.1} ms vs adaptive {:.1} ms ({:.1}% reduction)",
        base_means.mean(),
        adpt_means.mean(),
        (1.0 - adpt_means.mean() / base_means.mean()) * 100.0
    );
}
