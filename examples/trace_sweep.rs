//! Robustness sweep over stochastic LTE-like capacity traces.
//!
//! Runs both schemes over a set of seeded Markov-modulated cellular
//! traces (each with organic fades and recoveries) and prints per-seed
//! and aggregate latency/quality, demonstrating the controller outside
//! the clean single-step scenario.
//!
//! ```text
//! cargo run --release --example trace_sweep [num_seeds]
//! ```

use ravel::metrics::{RunningStats, Table};
use ravel::pipeline::{run_session, Scheme, SessionConfig};
use ravel::sim::Dur;
use ravel::trace::{CellularProfile, StochasticTrace};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let profile = CellularProfile::lte_like();
    let duration = Dur::secs(45);

    let mut table = Table::new(&[
        "seed",
        "base_mean_ms",
        "base_p95_ms",
        "adpt_mean_ms",
        "adpt_p95_ms",
        "adpt_drops_handled",
    ]);
    let mut base_means = RunningStats::new();
    let mut adpt_means = RunningStats::new();

    for seed in 0..seeds {
        let run = |scheme| {
            let mut cfg = SessionConfig::default_with(scheme);
            cfg.duration = duration;
            cfg.seed = seed;
            let trace = StochasticTrace::generate(&profile, duration, seed);
            run_session(trace, cfg)
        };
        let base = run(Scheme::baseline());
        let adpt = run(Scheme::adaptive());
        let bs = base.recorder.summarize_all();
        let as_ = adpt.recorder.summarize_all();
        base_means.push(bs.mean_latency_ms);
        adpt_means.push(as_.mean_latency_ms);
        table.row_owned(vec![
            seed.to_string(),
            format!("{:.1}", bs.mean_latency_ms),
            format!("{:.1}", bs.p95_latency_ms),
            format!("{:.1}", as_.mean_latency_ms),
            format!("{:.1}", as_.p95_latency_ms),
            adpt.drops_handled.to_string(),
        ]);
    }

    println!(
        "LTE-like stochastic traces, {}s sessions:",
        duration.as_micros() / 1_000_000
    );
    println!("{}", table.render());
    println!(
        "aggregate mean latency: baseline {:.1} ms vs adaptive {:.1} ms ({:.1}% reduction)",
        base_means.mean(),
        adpt_means.mean(),
        (1.0 - adpt_means.mean() / base_means.mean()) * 100.0
    );
}
