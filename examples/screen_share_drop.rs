//! Screen sharing through a drop-and-recover event.
//!
//! Screen content is the encoder's trickiest case for fast adaptation:
//! almost nothing changes between frames (tiny P-frames), but slide
//! flips arrive as scene cuts that cost I-frame-scale bursts at the
//! worst possible moment. This example runs all four content classes
//! through the same drop-and-recover trace and reports how much each
//! benefits from the adaptive controller.
//!
//! ```text
//! cargo run --release --example screen_share_drop
//! ```

use ravel::metrics::Table;
use ravel::pipeline::{run_session, Scheme, SessionConfig};
use ravel::sim::{Dur, Time};
use ravel::trace::StepTrace;
use ravel::video::ContentClass;

fn main() {
    let drop_at = Time::from_secs(10);
    let recover_at = Time::from_secs(20);
    let mk_trace = || StepTrace::drop_and_recover(4e6, 1e6, drop_at, recover_at);

    let mut table = Table::new(&[
        "content",
        "base_mean_ms",
        "adpt_mean_ms",
        "latency_delta",
        "base_ssim",
        "adpt_ssim",
    ]);

    for content in ContentClass::ALL {
        let run = |scheme| {
            let mut cfg = SessionConfig::default_with(scheme);
            cfg.content = content;
            cfg.duration = Dur::secs(30);
            let result = run_session(mk_trace(), cfg);
            result.recorder.summarize(drop_at, recover_at)
        };
        let base = run(Scheme::baseline());
        let adpt = run(Scheme::adaptive());
        let delta = 1.0 - adpt.mean_latency_ms / base.mean_latency_ms;
        table.row_owned(vec![
            content.to_string(),
            format!("{:.1}", base.mean_latency_ms),
            format!("{:.1}", adpt.mean_latency_ms),
            format!("{:+.1}%", -delta * 100.0),
            format!("{:.4}", base.mean_ssim),
            format!("{:.4}", adpt.mean_ssim),
        ]);
    }

    println!("Drop window (10s..20s), 4 Mbps -> 1 Mbps -> 4 Mbps:");
    println!("{}", table.render());
}
