//! Quickstart: run one adaptive RTC session over a sudden bandwidth
//! drop and print the headline comparison against the baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ravel::metrics::Table;
use ravel::pipeline::{run_session, Scheme, SessionConfig};
use ravel::sim::{Dur, Time};
use ravel::trace::StepTrace;

fn main() {
    // The canonical scenario from the paper's motivation: a 4 Mbps path
    // that suddenly drops to 1 Mbps mid-call.
    let drop_at = Time::from_secs(10);
    let mk_trace = || StepTrace::sudden_drop(4e6, 1e6, drop_at);

    let mut table = Table::new(&[
        "scheme",
        "mean_ms",
        "p95_ms",
        "p99_ms",
        "mean_ssim",
        "freeze_%",
    ]);

    let mut results = Vec::new();
    for scheme in [Scheme::baseline(), Scheme::adaptive()] {
        let mut cfg = SessionConfig::default_with(scheme);
        cfg.duration = Dur::secs(30);
        let result = run_session(mk_trace(), cfg);
        // Measure the window around the drop, where the schemes differ.
        let s = result.recorder.summarize(drop_at, drop_at + Dur::secs(8));
        table.row_owned(vec![
            scheme.name(),
            format!("{:.1}", s.mean_latency_ms),
            format!("{:.1}", s.p95_latency_ms),
            format!("{:.1}", s.p99_latency_ms),
            format!("{:.4}", s.mean_ssim),
            format!("{:.1}", s.freeze_ratio() * 100.0),
        ]);
        results.push(s);
    }

    println!("Post-drop window (drop .. drop+8s), 4 Mbps -> 1 Mbps:");
    println!("{}", table.render());

    let reduction = 1.0 - results[1].mean_latency_ms / results[0].mean_latency_ms;
    println!(
        "Adaptive reduces mean post-drop latency by {:.2}% \
         (paper reports 28.66%-78.87% across conditions).",
        reduction * 100.0
    );
}
